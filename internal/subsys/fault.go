package subsys

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fuzzydb/internal/gradedset"
)

// FaultPhase selects which access mode a fault plan targets. The zero
// value targets both modes.
type FaultPhase uint8

const (
	// FaultSortedAccess injects faults into sorted access only.
	FaultSortedAccess FaultPhase = 1 << iota
	// FaultRandomAccess injects faults into random access only.
	FaultRandomAccess
	// FaultBoth injects faults into both access modes (the default).
	FaultBoth = FaultSortedAccess | FaultRandomAccess
)

// FaultPlan is a seeded, deterministic description of when a FaultSource
// fails. Fault sites are keyed by position, not by call: a sorted fault
// fires at a fixed rank and a random fault at a fixed object id, decided
// by hashing (Seed, mode, key), so the set of faulty sites is identical
// however accesses are batched, interleaved, or sharded — the property
// the cross-executor equivalence fuzz relies on.
type FaultPlan struct {
	// Seed keys the deterministic site selection.
	Seed uint64
	// Rate is the per-site fault probability in [0, 1].
	Rate float64
	// Phase restricts faults to one access mode; zero targets both.
	Phase FaultPhase
	// Transient > 0 makes every fault transient: a faulty site fails
	// its first Transient attempts and then succeeds forever after, so
	// a retry layer with MaxRetries ≥ Transient hides it completely.
	// 0 makes faults permanent.
	Transient int
	// FailAfter > 0 additionally fails every access past the N-th
	// physical access, permanently. Unlike rate faults this is keyed on
	// the access COUNT, which differs across executors and batchings —
	// use it for exhaustion scenarios, never in equivalence tests.
	FailAfter int
	// Wedge makes every injected fault sleep this long before
	// returning, simulating a hung call (pair with a resilience
	// PerAccessTimeout to exercise the timeout path).
	Wedge time.Duration
}

// FaultError is the error a FaultSource injects. It implements the
// Transient() capability the resilience layer retries on.
type FaultError struct {
	// Random reports the access mode the fault fired in.
	Random bool
	// Key is the faulty rank (sorted) or object id (random); −1 for a
	// FailAfter exhaustion fault.
	Key int
	// Temporary reports whether the fault clears after enough retries.
	Temporary bool
}

// Error implements error.
func (e *FaultError) Error() string {
	mode, kind := "sorted", "permanent"
	if e.Random {
		mode = "random"
	}
	if e.Temporary {
		kind = "transient"
	}
	if e.Key < 0 {
		return "subsys: injected fault: source exhausted (fail-after limit)"
	}
	return fmt.Sprintf("subsys: injected %s %s-access fault at %d", kind, mode, e.Key)
}

// Transient reports whether a retry can clear the fault.
func (e *FaultError) Transient() bool { return e.Temporary }

// FaultSource wraps any Source with deterministic fault injection per
// its FaultPlan, exposing the failures through the FallibleSource face.
// The plain Source methods forward to the wrapped source untouched —
// fault injection is observable only through Try* (which Counted always
// prefers), so an unaware consumer sees correct data rather than a
// panic.
//
// Transient-fault bookkeeping is per site (a mutex-guarded attempt
// count per faulty rank/object), so a site clears after exactly
// Transient failed attempts no matter which goroutine or batch touched
// it — retried runs converge to the fault-free data and tallies. The
// counters are stateful: equivalence tests must build a fresh
// FaultSource per run.
type FaultSource struct {
	src  Source
	plan FaultPlan

	mu       sync.Mutex
	attempts map[faultKey]int

	accesses atomic.Int64 // physical accesses (drives FailAfter)
	injected atomic.Int64 // faults injected so far
}

type faultKey struct {
	random bool
	key    int
}

// NewFaultSource wraps src with the given fault plan.
func NewFaultSource(src Source, plan FaultPlan) *FaultSource {
	f := &FaultSource{src: src, plan: plan}
	if plan.Transient > 0 {
		f.attempts = make(map[faultKey]int)
	}
	return f
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// well-mixed 64-bit hash used to decide fault sites.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faulty decides whether the plan marks the given site as a fault site.
// Pure function of (Seed, mode, key): independent of call order.
func (f *FaultSource) faulty(random bool, key int) bool {
	if f.plan.Rate <= 0 {
		return false
	}
	phase := FaultSortedAccess
	if random {
		phase = FaultRandomAccess
	}
	if f.plan.Phase != 0 && f.plan.Phase&phase == 0 {
		return false
	}
	k := uint64(key) << 1
	if random {
		k |= 1
	}
	h := splitmix64(f.plan.Seed ^ splitmix64(k))
	return float64(h>>11)/(1<<53) < f.plan.Rate
}

// inject fires the fault at a site, honoring transient clearing: it
// returns nil once a transient site has burned through its failure
// budget. Wedge is applied outside any lock.
func (f *FaultSource) inject(random bool, key int) error {
	if f.plan.Transient > 0 {
		k := faultKey{random: random, key: key}
		f.mu.Lock()
		n := f.attempts[k]
		if n >= f.plan.Transient {
			f.mu.Unlock()
			return nil
		}
		f.attempts[k] = n + 1
		f.mu.Unlock()
	}
	f.injected.Add(1)
	if f.plan.Wedge > 0 {
		time.Sleep(f.plan.Wedge)
	}
	return &FaultError{Random: random, Key: key, Temporary: f.plan.Transient > 0}
}

// failAfter charges one physical access against the FailAfter budget and
// returns the permanent exhaustion fault once it is spent.
func (f *FaultSource) failAfter() error {
	if f.plan.FailAfter <= 0 {
		return nil
	}
	if f.accesses.Add(1) <= int64(f.plan.FailAfter) {
		return nil
	}
	f.injected.Add(1)
	if f.plan.Wedge > 0 {
		time.Sleep(f.plan.Wedge)
	}
	return &FaultError{Key: -1}
}

// Injected reports how many faults have fired so far (including
// transient ones later cleared by retries).
func (f *FaultSource) Injected() int64 { return f.injected.Load() }

// Len implements Source.
func (f *FaultSource) Len() int { return f.src.Len() }

// Entry implements Source, forwarding without fault injection (see the
// type comment).
func (f *FaultSource) Entry(rank int) gradedset.Entry { return f.src.Entry(rank) }

// Entries implements Source, forwarding without fault injection.
func (f *FaultSource) Entries(lo, hi int) []gradedset.Entry { return f.src.Entries(lo, hi) }

// Grade implements Source, forwarding without fault injection.
func (f *FaultSource) Grade(obj int) float64 { return f.src.Grade(obj) }

// Universe implements UniverseHinter when the wrapped source does.
func (f *FaultSource) Universe() (int, bool) {
	if h, ok := f.src.(UniverseHinter); ok {
		return h.Universe()
	}
	return 0, false
}

// TryEntry implements FallibleSource.
func (f *FaultSource) TryEntry(rank int) (gradedset.Entry, error) {
	span, err := f.TryEntries(rank, rank+1)
	if len(span) == 1 {
		return span[0], err
	}
	return gradedset.Entry{}, err
}

// TryEntries implements FallibleSource: it scans the requested ranks for
// fault sites and, on the first live one, returns the partial span of
// ranks before it plus the injected error — so the failure pins to the
// same rank whatever spans the caller asked for.
func (f *FaultSource) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	if err := f.failAfter(); err != nil {
		return nil, err
	}
	for r := lo; r < hi; r++ {
		if !f.faulty(false, r) {
			continue
		}
		if err := f.inject(false, r); err != nil {
			var span []gradedset.Entry
			if r > lo {
				span = f.src.Entries(lo, r)
			}
			return span, err
		}
	}
	return f.src.Entries(lo, hi), nil
}

// TryGrade implements FallibleSource.
func (f *FaultSource) TryGrade(obj int) (float64, error) {
	if err := f.failAfter(); err != nil {
		return 0, err
	}
	if f.faulty(true, obj) {
		if err := f.inject(true, obj); err != nil {
			return 0, err
		}
	}
	return f.src.Grade(obj), nil
}

// FaultSubsystem wraps a subsystem so every source it produces is
// fault-injected (see FaultSource). Each produced source derives its
// own seed from the plan's seed and the query it answers, so different
// lists fail at different sites while the whole ensemble stays
// reproducible.
type FaultSubsystem struct {
	sub  Subsystem
	plan FaultPlan

	mu   sync.Mutex
	srcs []*FaultSource
}

// WithFaults wraps sub with the given fault plan.
func WithFaults(sub Subsystem, plan FaultPlan) *FaultSubsystem {
	return &FaultSubsystem{sub: sub, plan: plan}
}

// Attribute implements Subsystem.
func (f *FaultSubsystem) Attribute() string { return f.sub.Attribute() }

// Size implements Subsystem.
func (f *FaultSubsystem) Size() int { return f.sub.Size() }

// Query implements Subsystem, wrapping the result in a FaultSource.
func (f *FaultSubsystem) Query(target string) (Source, error) {
	src, err := f.sub.Query(target)
	if err != nil {
		return nil, err
	}
	plan := f.plan
	plan.Seed = splitmix64(plan.Seed ^ hashString(f.sub.Attribute()+"\x00"+target))
	fs := NewFaultSource(src, plan)
	f.mu.Lock()
	f.srcs = append(f.srcs, fs)
	f.mu.Unlock()
	return fs, nil
}

// GradeSketch forwards GradeSketcher: fault injection does not move
// grade mass, so weighted shard plans — and the tallies that depend on
// the cut boundaries — are identical with and without the fault layer,
// and sketching never trips an injected fault site.
func (f *FaultSubsystem) GradeSketch(target string) *Sketch {
	if gs, ok := f.sub.(GradeSketcher); ok {
		return gs.GradeSketch(target)
	}
	return nil
}

// Injected sums the faults injected across every source this subsystem
// has produced.
func (f *FaultSubsystem) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var total int64
	for _, s := range f.srcs {
		total += s.Injected()
	}
	return total
}

// hashString is FNV-1a, used to derive per-list fault seeds.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
