package subsys

import (
	"sort"

	"fuzzydb/internal/gradedset"
)

// DefaultSketchBuckets is the bucket count of a grade-distribution
// sketch: fine enough that a planner cutting the universe at sketch
// boundaries lands within ~1.5% of the ideal cut on any monotone mass
// profile, coarse enough that a sketch is a few hundred bytes.
const DefaultSketchBuckets = 64

// DefaultSketchProbes is how many random accesses SampleSketch issues
// against an opaque source: enough strided probes to place 64 equi-depth
// boundaries with useful accuracy, few enough that sketching a remote
// list costs a bounded, one-time burst.
const DefaultSketchProbes = 512

// Sketch is an equi-depth histogram of one list's grade mass over the
// dense object-id axis {0,…,N−1}: bucket i covers the ids
// [Cuts[i], Cuts[i+1]) and carries Mass[i], the total grade mass of
// those ids. Buckets hold near-equal mass (not near-equal width), so
// where grades concentrate the id axis is resolved finely — exactly
// where a skew-aware shard planner needs precision.
//
// Sketches are planning metadata, never measurement: building one reads
// the raw list or source directly, outside any Counted, so the Section 5
// sorted/random tallies of every evaluation are untouched by sketching.
// A sketch describes the list at build time; mutable subsystems
// invalidate their cached sketches when their epoch advances.
type Sketch struct {
	// N is the universe size the sketch describes.
	N int
	// Cuts are the bucket boundaries on the id axis: len(Mass)+1 ids,
	// ascending, Cuts[0] = 0 and Cuts[len(Mass)] = N.
	Cuts []int
	// Mass[i] is the total grade mass of the ids in [Cuts[i], Cuts[i+1]).
	Mass []float64
}

// Buckets returns the number of buckets.
func (s *Sketch) Buckets() int { return len(s.Mass) }

// Total returns the sketch's total grade mass.
func (s *Sketch) Total() float64 {
	var t float64
	for _, m := range s.Mass {
		t += m
	}
	return t
}

// MassBetween estimates the grade mass of the ids in [lo, hi), assuming
// mass is spread uniformly within each bucket (the only assumption an
// equi-depth histogram needs, since heavy regions get narrow buckets).
func (s *Sketch) MassBetween(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > s.N {
		hi = s.N
	}
	if lo >= hi {
		return 0
	}
	var mass float64
	for i := range s.Mass {
		blo, bhi := s.Cuts[i], s.Cuts[i+1]
		if bhi <= lo || blo >= hi {
			continue
		}
		olo, ohi := blo, bhi
		if olo < lo {
			olo = lo
		}
		if ohi > hi {
			ohi = hi
		}
		if w := bhi - blo; w > 0 {
			mass += s.Mass[i] * float64(ohi-olo) / float64(w)
		}
	}
	return mass
}

// sketchFromGrades builds the equi-depth sketch of per-id grade masses
// g[0..n-1] with up to `buckets` buckets: one pass accumulating mass,
// emitting a boundary whenever a bucket has swallowed its fair share.
func sketchFromGrades(g []float64, buckets int) *Sketch {
	n := len(g)
	if buckets < 1 {
		buckets = DefaultSketchBuckets
	}
	if buckets > n {
		buckets = n
	}
	s := &Sketch{N: n, Cuts: []int{0}}
	if n == 0 {
		s.Cuts = append(s.Cuts, 0)
		s.Mass = []float64{0}
		return s
	}
	var total float64
	for _, v := range g {
		total += v
	}
	if total <= 0 {
		// Flat zero mass: fall back to equal-width buckets so the sketch
		// still partitions the axis.
		for i := 1; i <= buckets; i++ {
			s.Cuts = append(s.Cuts, i*n/buckets)
			s.Mass = append(s.Mass, 0)
		}
		return s
	}
	share := total / float64(buckets)
	var acc float64
	for id := 0; id < n; id++ {
		acc += g[id]
		// Emit a boundary once this bucket holds its share — unless doing
		// so would leave fewer ids than buckets still owed.
		remainingBuckets := buckets - len(s.Mass)
		if acc >= share && remainingBuckets > 1 && n-(id+1) >= remainingBuckets-1 {
			s.Cuts = append(s.Cuts, id+1)
			s.Mass = append(s.Mass, acc)
			acc = 0
		}
	}
	s.Cuts = append(s.Cuts, n)
	s.Mass = append(s.Mass, acc)
	return s
}

// SketchList builds the exact grade-distribution sketch of a graded
// list in one O(N) pass over the dense universe, reading grades through
// the list's flat rank index — no metered access, no sorting.
func SketchList(l *gradedset.List) *Sketch {
	n := l.Len()
	g := make([]float64, n)
	for id := 0; id < n; id++ {
		v, err := l.Grade(id)
		if err == nil {
			g[id] = v
		}
	}
	return sketchFromGrades(g, DefaultSketchBuckets)
}

// SampleSketch approximates the sketch of an opaque source by probing
// `probes` evenly strided ids with raw (unmetered, unmemoized) random
// access and interpolating the mass between samples. probes <= 0 selects
// DefaultSketchProbes. The probes go straight to the source — never
// through a Counted — so the Section 5 tallies of any evaluation over
// the same source are untouched; remote sources pay the probe burst in
// wall-clock only. Deterministic: the same source yields the same
// sketch.
func SampleSketch(src Source, probes int) *Sketch {
	n := src.Len()
	if probes <= 0 {
		probes = DefaultSketchProbes
	}
	if probes > n {
		probes = n
	}
	if n == 0 || probes == 0 {
		return sketchFromGrades(nil, DefaultSketchBuckets)
	}
	// Sample ids at stride centers, then spread each sample's grade over
	// its stride: g approximates the per-id mass profile at probe
	// resolution.
	g := make([]float64, n)
	for i := 0; i < probes; i++ {
		lo := i * n / probes
		hi := (i + 1) * n / probes
		if hi <= lo {
			continue
		}
		mid := lo + (hi-lo)/2
		v := src.Grade(mid)
		for id := lo; id < hi; id++ {
			g[id] = v
		}
	}
	return sketchFromGrades(g, DefaultSketchBuckets)
}

// GradeSketcher is the optional capability of a Subsystem that can
// serve grade-distribution sketches for its targets — built once at
// load (or first request) and cached, so planners get them for free.
// Subsystems without the capability are sketched by sampling, or the
// planner degenerates to the even split.
type GradeSketcher interface {
	// GradeSketch returns the sketch of the list served for target, or
	// nil when the target is unknown.
	GradeSketch(target string) *Sketch
}

// mergedCuts returns the ascending union of the sketches' bucket
// boundaries restricted to (0, n), plus 0 and n themselves: the finest
// grid on which every sketch is piecewise-uniform. Nil sketches and
// sketches over a different universe are skipped.
func mergedCuts(n int, sketches []*Sketch) []int {
	seen := map[int]bool{0: true, n: true}
	cuts := []int{0, n}
	for _, s := range sketches {
		if s == nil || s.N != n {
			continue
		}
		for _, c := range s.Cuts {
			if c > 0 && c < n && !seen[c] {
				seen[c] = true
				cuts = append(cuts, c)
			}
		}
	}
	sort.Ints(cuts)
	return cuts
}

// MergedCuts is the exported form of the planners' boundary grid; see
// core.PlanShardsWeighted.
func MergedCuts(n int, sketches []*Sketch) []int { return mergedCuts(n, sketches) }
