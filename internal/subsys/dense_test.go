package subsys

import (
	"testing"

	"fuzzydb/internal/gradedset"
)

func denseList(t *testing.T, grades []float64) *gradedset.List {
	t.Helper()
	entries := make([]gradedset.Entry, len(grades))
	for i, g := range grades {
		entries[i] = gradedset.Entry{Object: i, Grade: g}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// hideHint wraps a Source without forwarding UniverseHinter, forcing
// Counted onto the map-backed memo.
type hideHint struct{ src Source }

func (h hideHint) Len() int                             { return h.src.Len() }
func (h hideHint) Entry(rank int) gradedset.Entry       { return h.src.Entry(rank) }
func (h hideHint) Entries(lo, hi int) []gradedset.Entry { return h.src.Entries(lo, hi) }
func (h hideHint) Grade(obj int) float64                { return h.src.Grade(obj) }

// TestCountedDenseMatchesMapMemo walks identical access sequences through
// a dense-universe Counted and a map-fallback Counted: every observable —
// entries, grades, Known, Seen size, costs — must agree.
func TestCountedDenseMatchesMapMemo(t *testing.T) {
	l := denseList(t, []float64{0.9, 0.2, 0.8, 0.5, 0.7, 0.1, 0.6, 0.3})
	dense := Count(FromList(l))
	if _, ok := dense.Universe(); !ok {
		t.Fatal("dense list source did not report a universe")
	}
	mapped := Count(hideHint{src: FromList(l)})
	if _, ok := mapped.Universe(); ok {
		t.Fatal("hidden hint still reported a universe")
	}

	for rank := 0; rank < 5; rank++ {
		ed, okd := dense.EntryAt(rank)
		em, okm := mapped.EntryAt(rank)
		if okd != okm || ed != em {
			t.Fatalf("rank %d: dense (%v,%v) vs map (%v,%v)", rank, ed, okd, em, okm)
		}
	}
	for _, obj := range []int{1, 1, 7, 0, 5} {
		if gd, gm := dense.Grade(obj), mapped.Grade(obj); gd != gm {
			t.Errorf("Grade(%d): dense %v vs map %v", obj, gd, gm)
		}
	}
	for obj := 0; obj < 8; obj++ {
		gd, okd := dense.Known(obj)
		gm, okm := mapped.Known(obj)
		if gd != gm || okd != okm {
			t.Errorf("Known(%d): dense (%v,%v) vs map (%v,%v)", obj, gd, okd, gm, okm)
		}
	}
	if ds, ms := len(dense.Seen()), len(mapped.Seen()); ds != ms {
		t.Errorf("Seen: dense %d objects vs map %d", ds, ms)
	}
	if dense.Cost() != mapped.Cost() {
		t.Errorf("cost: dense %v vs map %v", dense.Cost(), mapped.Cost())
	}
	// Re-reads of a paid-for prefix stay free on both.
	before := dense.Cost()
	dense.EntryAt(2)
	mapped.EntryAt(2)
	if dense.Cost() != before || mapped.Cost() != before {
		t.Error("re-reading a delivered rank was charged")
	}
}

// TestEntryAtSingleSourceCall pins the satellite fix: delivering rank r
// costs exactly one Entry/Entries call per rank, even on re-read, and on
// the map fallback path too.
func TestEntryAtSingleSourceCall(t *testing.T) {
	l := denseList(t, []float64{0.9, 0.8, 0.7, 0.6})
	calls := 0
	src := countingSource{list: l, calls: &calls}
	c := Count(hideHint{src: src})
	c.EntryAt(2) // delivers ranks 0,1,2
	if calls != 3 {
		t.Fatalf("delivering 3 ranks cost %d source reads", calls)
	}
	c.EntryAt(2) // cached
	c.EntryAt(0) // cached
	if calls != 3 {
		t.Errorf("re-reads hit the source: %d reads", calls)
	}
}

// countingSource counts per-rank reads regardless of access shape.
type countingSource struct {
	list  *gradedset.List
	calls *int
}

func (s countingSource) Len() int { return s.list.Len() }
func (s countingSource) Entry(rank int) gradedset.Entry {
	*s.calls++
	return s.list.Entry(rank)
}
func (s countingSource) Entries(lo, hi int) []gradedset.Entry {
	*s.calls += hi - lo
	return s.list.Range(lo, hi)
}
func (s countingSource) Grade(obj int) float64 {
	g, err := s.list.Grade(obj)
	if err != nil {
		return 0
	}
	return g
}

func TestCursorNextBatch(t *testing.T) {
	l := denseList(t, []float64{0.9, 0.8, 0.7, 0.6, 0.5})
	c := Count(FromList(l))
	cu := NewCursor(c)
	if g := cu.LastGrade(); g != 1 {
		t.Errorf("LastGrade before reads = %v, want 1", g)
	}
	span := cu.NextBatch(3)
	if len(span) != 3 || span[0].Object != 0 || span[2].Grade != 0.7 {
		t.Fatalf("NextBatch(3) = %v", span)
	}
	if cu.Pos() != 3 || cu.LastGrade() != 0.7 {
		t.Errorf("after batch: pos=%d last=%v", cu.Pos(), cu.LastGrade())
	}
	if c.Cost().Sorted != 3 {
		t.Errorf("batch of 3 cost %v", c.Cost())
	}
	// Overshooting clamps to the end; the tail batch is exact.
	span = cu.NextBatch(10)
	if len(span) != 2 || !cu.Exhausted() {
		t.Fatalf("tail NextBatch = %v, exhausted=%v", span, cu.Exhausted())
	}
	if cu.NextBatch(1) != nil {
		t.Error("NextBatch past the end returned entries")
	}
	if c.Cost().Sorted != 5 {
		t.Errorf("total sorted cost %v, want 5", c.Cost())
	}
	// A second cursor re-reads the same prefix for free.
	cu2 := NewCursor(c)
	if s := cu2.NextBatch(5); len(s) != 5 {
		t.Fatalf("second cursor batch = %v", s)
	}
	if c.Cost().Sorted != 5 {
		t.Errorf("overlapping prefix was re-charged: %v", c.Cost())
	}
	if cu2.LastGrade() != 0.5 {
		t.Errorf("second cursor LastGrade = %v", cu2.LastGrade())
	}
}

// TestCursorLastGradeCached: LastGrade must agree with the entry stream
// without touching the source.
func TestCursorLastGradeCached(t *testing.T) {
	l := denseList(t, []float64{0.9, 0.8, 0.3})
	calls := 0
	c := Count(hideHint{src: countingSource{list: l, calls: &calls}})
	cu := NewCursor(c)
	for {
		e, ok := cu.Next()
		if !ok {
			break
		}
		before := calls
		if g := cu.LastGrade(); g != e.Grade {
			t.Errorf("LastGrade = %v after consuming grade %v", g, e.Grade)
		}
		if calls != before {
			t.Error("LastGrade touched the source")
		}
	}
}

// TestValidatedKeepsDenseHint: wrapping a dense source in the contract
// checker must not knock it off the dense fast path.
func TestValidatedKeepsDenseHint(t *testing.T) {
	l := denseList(t, []float64{0.9, 0.8, 0.7})
	c := Count(Validated(FromList(l)))
	if n, ok := c.Universe(); !ok || n != 3 {
		t.Errorf("validated dense source reports universe (%d, %v), want (3, true)", n, ok)
	}
	c = Count(Validated(hideHint{src: FromList(l)}))
	if _, ok := c.Universe(); ok {
		t.Error("validated sparse source invented a universe hint")
	}
}

// TestCountedReleaseRecycles: a released dense cache is reusable and a
// fresh Counted starts clean.
func TestCountedReleaseRecycles(t *testing.T) {
	l := denseList(t, []float64{0.9, 0.8, 0.7})
	for i := 0; i < 100; i++ {
		c := Count(FromList(l))
		if _, ok := c.Known(0); ok {
			t.Fatal("fresh counted already knows a grade")
		}
		c.Grade(1)
		c.EntryAt(0)
		if got := c.Cost(); got.Sorted != 1 || got.Random != 1 {
			t.Fatalf("iteration %d: cost %v", i, got)
		}
		c.Release()
	}
}
