package subsys

import (
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
)

// Source is a subsystem's materialized answer to one atomic query,
// supporting the two access modes of Section 4. Rank 0 is the best match.
// Grade returns 0 for objects the source does not grade (a predicate that
// is false grades 0).
type Source interface {
	// Len returns the number of graded objects.
	Len() int
	// Entry performs sorted access: the entry at the given rank.
	Entry(rank int) gradedset.Entry
	// Entries performs batched sorted access: the entries at ranks
	// [lo, hi) in one call. It is the bulk form of Entry — semantically
	// hi−lo units of sorted access delivered together, so the middleware
	// pays one virtual call per prefix extension instead of one per rank.
	// The returned slice may share the source's storage and must not be
	// mutated; it is valid until the next call on the source.
	Entries(lo, hi int) []gradedset.Entry
	// Grade performs random access: the grade of the given object.
	Grade(obj int) float64
}

// UniverseHinter is an optional Source capability: a source graded over
// exactly the dense universe {0,…,N−1} can report it, letting the
// middleware back its per-object bookkeeping with flat arrays instead of
// maps. Sources over sparse or unknown object sets simply omit the
// method (or return dense=false) and the middleware falls back to maps.
type UniverseHinter interface {
	// Universe returns the universe size N when the source grades
	// exactly the objects 0,…,N−1.
	Universe() (n int, dense bool)
}

// ListSource adapts a gradedset.List to the Source interface.
type ListSource struct {
	list *gradedset.List
}

// FromList wraps a graded list as a Source.
func FromList(l *gradedset.List) ListSource { return ListSource{list: l} }

// Len implements Source.
func (s ListSource) Len() int { return s.list.Len() }

// Entry implements Source.
func (s ListSource) Entry(rank int) gradedset.Entry { return s.list.Entry(rank) }

// Entries implements Source: a zero-copy view of the ranks [lo, hi).
func (s ListSource) Entries(lo, hi int) []gradedset.Entry { return s.list.Range(lo, hi) }

// Grade implements Source; absent objects grade 0.
func (s ListSource) Grade(obj int) float64 {
	g, err := s.list.Grade(obj)
	if err != nil {
		return 0
	}
	return g
}

// Universe implements UniverseHinter via the list's own density index.
func (s ListSource) Universe() (int, bool) { return s.list.DenseUniverse() }

// Counted wraps a Source with access metering and memoization. It is the
// object algorithms actually touch: every grade that reaches an algorithm
// has been paid for exactly once, so the counters are the S and R of the
// Section 5 cost model by construction.
//
// Sorted access is sequential within the subsystem — to see rank r the
// middleware must have received ranks 0…r — but the middleware caches
// everything it has received, so re-reading an already-delivered rank
// (for example when a later phase of a plan rescans a prefix) costs
// nothing. The sorted cost of a list is therefore its high-water mark:
// the deepest prefix ever delivered to an algorithm.
//
// The buffered prefix can run ahead of the paid high-water mark: Prefetch
// reads ranks from the source into the buffer without delivering them.
// That is how a concurrent executor overlaps the m per-round sorted
// accesses across subsystems — readahead is a latency-hiding detail of
// the transport, while the Section 5 tallies meter exactly what the
// algorithm consumed, so they are bit-identical to a serial evaluation.
// The grade memo (which decides whether a later random access is free)
// is likewise updated only at delivery time, never by readahead.
//
// Over a dense universe (the source implements UniverseHinter) the
// memo is an epoch-stamped flat array drawn from a pool, so a metered
// access costs two array writes rather than a map insert; sparse sources
// use the map fallback. Either way the delivered prefix is cached in
// order, so re-reads never touch the source again.
type Counted struct {
	src     Source
	fs      FallibleSource // non-nil when src exposes the fallible face
	idx     int            // list index within the evaluation (SourceError.List)
	serr    *SourceError   // sticky first failure; the stream then reads as exhausted
	length  int            // src.Len(), cached off the interface
	fetched int            // paid high-water mark: entries delivered by sorted access
	random  int            // R for this list
	fenced  bool           // sorted stream closed early (threshold stop); see Fence
	dry     bool           // source delivered short of a demand without error: the
	// stream ended before Len() ranks (a work-stealing truncated shard
	// view); cursors past the buffered prefix read as exhausted
	prefix []gradedset.Entry // buffered prefix, prefix[r] = entry at rank r; may exceed fetched
	dc     *denseCache       // dense-universe memo; nil → map fallback
	known  map[int]float64   // map fallback memo (also overflow for out-of-universe probes)
	pipe   *pipeline         // background prefetcher; nil until StartPrefetch
	pstats PipelineStats     // stats snapshot kept past Release
	piped  bool              // a pipeline ran at some point (pstats is meaningful)
}

// Count wraps src for metered access. When src reports a dense universe
// the memo is array-backed; otherwise a map is used.
func Count(src Source) *Counted {
	c := &Counted{src: src, length: src.Len()}
	if f, ok := src.(FallibleSource); ok {
		c.fs = f
	}
	if h, ok := src.(UniverseHinter); ok {
		if n, dense := h.Universe(); dense {
			c.dc = acquireDenseCache(n)
			return c
		}
	}
	c.known = make(map[int]float64)
	return c
}

// CountAll wraps each source of a list, recording each list's index so
// a failure can name the list it happened on (SourceError.List).
func CountAll(srcs []Source) []*Counted {
	out := make([]*Counted, len(srcs))
	for i, s := range srcs {
		out[i] = Count(s)
		out[i].idx = i
	}
	return out
}

// Release returns pooled resources to the pool. The Counted must not be
// accessed afterwards (except that previously returned Cost values remain
// valid). Callers that keep lists alive across evaluations — paginators,
// multi-phase plans — simply never call it.
func (c *Counted) Release() {
	if c.pipe != nil {
		// Stop the prefetcher without waiting for an in-flight batch: a
		// wedged source must not wedge Release (a budget-stopped
		// evaluation still releases its lists). The worker exits on its
		// own once its call returns — it touches only its private spool
		// and its own copy of the source, never the pooled state being
		// recycled here — and a batch still in flight at shutdown is
		// simply not counted in the final stats.
		c.pipe.close()
		c.pstats = c.pipe.snapshot()
		c.piped = true
		c.pipe = nil
	}
	if c.dc != nil {
		releaseDenseCache(c.dc)
		c.dc = nil
	}
	c.prefix = nil
	c.known = nil
	c.src = nil
}

// ReleaseAll releases every list of an evaluation.
func ReleaseAll(cs []*Counted) {
	for _, c := range cs {
		c.Release()
	}
}

// Len returns the number of graded objects.
func (c *Counted) Len() int { return c.length }

// Universe reports the dense universe size when the underlying source
// declared one (see UniverseHinter).
func (c *Counted) Universe() (int, bool) {
	if c.dc != nil {
		return c.dc.n, true
	}
	return 0, false
}

// Depth returns the high-water mark of sorted access.
func (c *Counted) Depth() int { return c.fetched }

// Fence closes the list's sorted stream early: from now on every cursor
// over it reports exhaustion and delivers nothing more, exactly as if
// the list ended at the ranks already consumed. Random access and the
// grade memo are unaffected — a fenced evaluation still completes the
// grade vectors of the objects it has seen.
//
// Fencing is how a threshold-aware shard driver stops a shard whose
// remaining objects provably cannot reach the global top k: the
// algorithm's sorted loop sees its cursors run dry and falls through to
// its completion phase over the seen objects. Fence must be called from
// the goroutine driving the evaluation (it is not synchronized).
//
// Fencing also drains an attached prefetch pipeline: the worker stops
// issuing sorted accesses once its in-flight batch (if any) returns, so
// a fenced list costs the backing source nothing further.
func (c *Counted) Fence() {
	c.fenced = true
	if c.pipe != nil {
		c.pipe.close()
	}
}

// Fenced reports whether the sorted stream was closed early.
func (c *Counted) Fenced() bool { return c.fenced }

// record memoizes a grade learned by either access mode.
func (c *Counted) record(obj int, g float64) {
	if c.dc != nil {
		if c.dc.put(obj, g) {
			return
		}
		// Out-of-universe object on a dense source: overflow to the map.
		if c.known == nil {
			c.known = make(map[int]float64)
		}
	}
	c.known[obj] = g
}

// ensureBuffered extends the buffered prefix to at least n entries on
// behalf of a consumer about to deliver them: absorbing from the
// background pipeline when one is attached (waiting for it if
// necessary), and reading the missing ranks from the source in one
// batched call otherwise (or when the pipeline was closed early). It
// does not deliver anything: the paid high-water mark and the grade
// memo are untouched. A source failure that leaves the demand unmet is
// recorded as the list's sticky error.
func (c *Counted) ensureBuffered(n int) { c.buffer(n, true) }

// bufferAhead is ensureBuffered's speculative twin, used by readahead
// (Prefetch, executor staging): a source failure is swallowed — the
// partial span is kept and the fault site is left to re-fire if and
// when a consumer actually demands the rank. Recording it here would
// make failure surfacing depend on how far an executor happens to read
// ahead, breaking cross-executor equivalence; swallowing mirrors the
// metering rule that readahead is invisible until delivery.
func (c *Counted) bufferAhead(n int) { c.buffer(n, false) }

func (c *Counted) buffer(n int, demand bool) {
	if n > c.length {
		n = c.length
	}
	if n <= len(c.prefix) {
		return
	}
	if c.serr != nil || c.dry {
		// Failed or dry list: the sorted stream reads as exhausted at the
		// already-buffered prefix; no further source accesses.
		return
	}
	if c.pipe != nil {
		c.pipe.demand(n)
		c.prefix = c.pipe.drainInto(c.prefix)
		for len(c.prefix) < n && c.pipe.await(n, nil) {
			c.prefix = c.pipe.drainInto(c.prefix)
		}
		// The close path returns from await without a drain: absorb the
		// worker's final partial span before deciding anything, so a
		// failure pins to the true first missing rank and the direct
		// read below never overlaps ranks still parked in the spool.
		c.prefix = c.pipe.drainInto(c.prefix)
		if n <= len(c.prefix) {
			return
		}
		if err := c.pipe.failure(); err != nil {
			// The pipeline worker hit a terminal source failure. Its
			// partial span has been drained, so the failure pins to the
			// first rank the prefix is missing — but only a consumer's
			// unmet demand records it; a readahead shortfall stays
			// invisible.
			if demand {
				c.failSorted(len(c.prefix), err)
			}
			return
		}
		// Pipeline closed early (fence, abort): fall through to a direct
		// read for whatever the consumer still insists on delivering.
	}
	if c.fs != nil {
		span, err := c.fs.TryEntries(len(c.prefix), n)
		c.prefix = append(c.prefix, span...)
		if err != nil && demand && len(c.prefix) < n {
			// Record the failure only when it left the demand unmet: an
			// error alongside a complete span means a source that reads
			// beyond the request internally (a shard view's chunked
			// re-ranking) hit a fault past the demanded ranks, and the
			// site must stay invisible — it re-fires if a later demand
			// actually needs it.
			c.failSorted(len(c.prefix), err)
		}
		if err == nil && len(c.prefix) < n {
			// Short without error: the stream genuinely ended before Len()
			// ranks — a shard view truncated by work stealing. Unlike a
			// swallowed fault this is permanent, so mark the stream dry
			// whether the read was demand or readahead.
			c.dry = true
		}
		return
	}
	span := c.src.Entries(len(c.prefix), n)
	c.prefix = append(c.prefix, span...)
	if len(c.prefix) < n {
		// Infallible sources deliver every requested rank below Len() —
		// except a shard view truncated by work stealing, whose stream
		// ends early. Mark it dry so cursors read it as exhausted.
		c.dry = true
	}
}

// failSorted records the sticky first failure of this list's sorted
// stream at the given rank (the first undelivered one).
func (c *Counted) failSorted(rank int, err error) {
	if c.serr == nil {
		c.serr = newSourceError(c.idx, rank, false, err)
	}
}

// failRandom records the sticky first failure of this list's random
// access at the given object.
func (c *Counted) failRandom(obj int, err error) {
	if c.serr == nil {
		c.serr = newSourceError(c.idx, obj, true, err)
	}
}

// Err returns the list's sticky failure as a *SourceError, or nil. Once
// set, the list's sorted stream reads as exhausted and random access
// returns 0 without touching the source; executors check Err after each
// stage and surface it as the evaluation's typed error (the exhausted
// reads never leak into results).
func (c *Counted) Err() error {
	if c.serr == nil {
		return nil
	}
	return c.serr
}

// Fallible reports whether the underlying source exposes the fallible
// face (and can therefore fail mid-query).
func (c *Counted) Fallible() bool { return c.fs != nil }

// StartPrefetch attaches a background prefetch pipeline to the list: a
// worker goroutine keeps the uncounted readahead buffer ahead of
// consumption by issuing batched sorted accesses with adaptive depth
// (depth <= 0: start at 1, double on stall, halve when the consumer
// falls behind, capped at maxDepth or DefaultPrefetchCap). Payment stays
// strictly on delivery — the pipeline never advances the sorted tally or
// the grade memo — so tallies are bit-identical to an unpipelined run.
//
// The worker reads the source concurrently with the evaluation's random
// accesses, so the source must tolerate concurrent reads (every built-in
// source does; Validated does not). Idempotent; no-op on fenced or
// released lists. Stop with StopPrefetch/AbortPrefetch, or let Release
// do it.
func (c *Counted) StartPrefetch(depth, maxDepth int) {
	if c.pipe != nil || c.fenced || c.src == nil || c.serr != nil {
		return
	}
	c.pipe = newPipeline(c.src, c.fs, c.length, len(c.prefix), depth, maxDepth)
	c.piped = true
}

// AbortPrefetch closes the pipeline without waiting for its in-flight
// batch: no further source accesses are issued. Used on cancellation (a
// wedged batch must not block the evaluation's return) and after a
// budget reservation failure (never prefetch past one). Safe to call
// from the evaluation goroutine at any time; idempotent.
func (c *Counted) AbortPrefetch() {
	if c.pipe != nil {
		c.pipe.close()
	}
}

// StopPrefetch closes the pipeline and waits for its worker to exit —
// after it returns, the evaluation goroutine is the source's only
// toucher again. Do not call with a wedged batch in flight (use
// AbortPrefetch, or Release, which stop without waiting).
func (c *Counted) StopPrefetch() {
	if c.pipe != nil {
		c.pipe.close()
		c.pipe.join()
	}
}

// PrefetchStats reports what the list's prefetch pipeline did, if one
// was ever attached. Valid during the evaluation and after Release.
func (c *Counted) PrefetchStats() (PipelineStats, bool) {
	if c.pipe != nil {
		return c.pipe.snapshot(), true
	}
	return c.pstats, c.piped
}

// deliver pays for ranks [fetched, hi): the entries enter the grade memo
// and the sorted-access tally advances. Callers must have buffered
// through hi first.
func (c *Counted) deliver(hi int) {
	if hi > len(c.prefix) {
		// A failed list's prefix can run short of the request; deliver
		// (and pay for) only what was actually obtained.
		hi = len(c.prefix)
	}
	if hi <= c.fetched {
		return
	}
	for _, got := range c.prefix[c.fetched:hi] {
		c.record(got.Object, got.Grade)
	}
	c.fetched = hi
}

// Prefetch buffers the first n ranks of the list (clamped to its length)
// without delivering them: no sorted-access cost is incurred and the
// grade memo is unchanged. An executor uses it to overlap subsystem reads
// across lists; the algorithm still pays per rank as it consumes them.
// Prefetch must not race with any other access to the same Counted —
// executors hand each list to exactly one worker and rejoin before the
// algorithm resumes.
func (c *Counted) Prefetch(n int) {
	if n > c.length {
		n = c.length
	}
	c.bufferAhead(n)
}

// Buffered returns how many ranks are buffered (paid or prefetched).
func (c *Counted) Buffered() int { return len(c.prefix) }

// EntryAt returns the entry at the given rank via sorted access,
// advancing (and paying for) the prefix up to that rank if it has not
// been delivered before. ok is false beyond the end of the list. The
// advance is one batched Entries call (or free if prefetched), and the
// delivered prefix is kept, so each rank costs exactly one source access
// ever.
func (c *Counted) EntryAt(rank int) (e gradedset.Entry, ok bool) {
	if rank < 0 || rank >= c.length {
		return gradedset.Entry{}, false
	}
	c.ensureBuffered(rank + 1)
	c.deliver(rank + 1)
	if rank >= len(c.prefix) {
		// Failed list: the rank was never obtained.
		return gradedset.Entry{}, false
	}
	return c.prefix[rank], true
}

// entriesTo delivers ranks [lo, hi) for a cursor: like EntryAt but
// returning the whole span. The returned slice is valid until the next
// sorted access on this list.
func (c *Counted) entriesTo(lo, hi int) []gradedset.Entry {
	c.ensureBuffered(hi)
	c.deliver(hi)
	if n := len(c.prefix); hi > n {
		// Failed list: return the (possibly empty) span that was
		// actually obtained.
		hi = n
		if lo > hi {
			lo = hi
		}
	}
	return c.prefix[lo:hi]
}

// Grade performs random access for obj. If the grade is already known to
// the middleware — from earlier sorted or random access on this list —
// the cached value is returned at no cost, per Section 4's observation
// that no access is needed for objects already seen.
func (c *Counted) Grade(obj int) float64 {
	if c.dc != nil {
		if g, ok := c.dc.get(obj); ok {
			return g
		}
		if c.known != nil {
			if g, ok := c.known[obj]; ok {
				return g
			}
		}
	} else if g, ok := c.known[obj]; ok {
		return g
	}
	if c.serr != nil {
		// Failed list: unknown grades read as 0 without touching the
		// source; the executor's post-stage Err check turns the run
		// into the typed error before the 0 can reach a result.
		return 0
	}
	if c.fs != nil {
		g, err := c.fs.TryGrade(obj)
		if err != nil {
			c.failRandom(obj, err)
			return 0
		}
		c.random++
		c.record(obj, g)
		return g
	}
	g := c.src.Grade(obj)
	c.random++
	c.record(obj, g)
	return g
}

// SourceGrade reads obj's grade from the underlying source directly:
// no metering, no memo — raw transport. It exists for executors that
// overlap random accesses out of band and then pay for them in order via
// DeliverGrade; unlike every other method it may be called from several
// goroutines at once (the source must tolerate concurrent reads).
func (c *Counted) SourceGrade(obj int) float64 { return c.src.Grade(obj) }

// TrySourceGrade is the fallible twin of SourceGrade: raw concurrent
// transport that can report a failure instead of a grade. Like
// SourceGrade it never meters, memoizes, or records — a failure
// observed here is handed back to the evaluation goroutine, which
// records it at delivery time via FailGrade.
func (c *Counted) TrySourceGrade(obj int) (float64, error) {
	if c.fs != nil {
		return c.fs.TryGrade(obj)
	}
	return c.src.Grade(obj), nil
}

// FailGrade records a random-access failure observed out of band (see
// TrySourceGrade) as the list's sticky error. Like DeliverGrade it must
// be called from the evaluation goroutine, in serial probe order, so the
// failure that sticks is the one a serial evaluation would have hit
// first.
func (c *Counted) FailGrade(obj int, err error) { c.failRandom(obj, err) }

// DeliverGrade pays for one random access whose grade was fetched out of
// band (see SourceGrade): if obj is already known the memoized grade is
// returned at no cost — exactly the cache hit a serial probe would have
// had — otherwise the random tally advances and g enters the memo. Must
// be called from the evaluation goroutine, in the same order a serial
// evaluation would have probed, so tallies and memo state coincide.
func (c *Counted) DeliverGrade(obj int, g float64) float64 {
	if g0, ok := c.Known(obj); ok {
		return g0
	}
	c.random++
	c.record(obj, g)
	return g
}

// Known reports the grade of obj if it has already been paid for.
func (c *Counted) Known(obj int) (float64, bool) {
	if c.dc != nil {
		if g, ok := c.dc.get(obj); ok {
			return g, true
		}
		if c.known == nil {
			return 0, false
		}
	}
	g, ok := c.known[obj]
	return g, ok
}

// Seen returns every object whose grade in this list is known, in
// unspecified order.
func (c *Counted) Seen() []int {
	if c.dc != nil {
		objs := make([]int, 0, len(c.dc.seen)+len(c.known))
		objs = append(objs, c.dc.seen...)
		for obj := range c.known {
			objs = append(objs, obj)
		}
		return objs
	}
	objs := make([]int, 0, len(c.known))
	for obj := range c.known {
		objs = append(objs, obj)
	}
	return objs
}

// Cost returns this list's access tallies so far.
func (c *Counted) Cost() cost.Cost {
	return cost.Cost{Sorted: c.fetched, Random: c.random}
}

// TotalCost sums the tallies across lists.
func TotalCost(cs []*Counted) cost.Cost {
	var total cost.Cost
	for _, c := range cs {
		total = total.Add(c.Cost())
	}
	return total
}

// Cursor is one consumer's position in a list's sorted stream. Several
// cursors (phases of a plan, pages of a paginated query) can read the
// same Counted list; overlapping prefixes are paid for once.
type Cursor struct {
	list *Counted
	pos  int
	last float64 // grade of the most recent entry consumed; 1 before any read
}

// NewCursor returns a cursor at the top of the list.
func NewCursor(list *Counted) *Cursor { return &Cursor{list: list, last: 1} }

// Cursors returns one fresh cursor per list.
func Cursors(lists []*Counted) []*Cursor {
	out := make([]*Cursor, len(lists))
	for i, l := range lists {
		out[i] = NewCursor(l)
	}
	return out
}

// Next returns the next entry in descending grade order, or ok = false at
// the end of the list (or past a Fence).
func (cu *Cursor) Next() (e gradedset.Entry, ok bool) {
	if cu.list.fenced {
		return gradedset.Entry{}, false
	}
	e, ok = cu.list.EntryAt(cu.pos)
	if ok {
		cu.pos++
		cu.last = e.Grade
	}
	return e, ok
}

// NextBatch returns up to max next entries in one batched sorted access,
// advancing the cursor past them. It returns nil at the end of the list.
// The returned slice must not be mutated and is valid until the next
// sorted access on the underlying list. Callers must genuinely want all
// max entries: every entry returned is paid for.
func (cu *Cursor) NextBatch(max int) []gradedset.Entry {
	if max <= 0 || cu.Exhausted() {
		return nil
	}
	hi := cu.pos + max
	if n := cu.list.Len(); hi > n {
		hi = n
	}
	span := cu.list.entriesTo(cu.pos, hi)
	// Advance by what was actually delivered: a failed list returns a
	// short span, and the cursor must not skip past ranks never seen.
	cu.pos += len(span)
	if len(span) > 0 {
		cu.last = span[len(span)-1].Grade
	}
	return span
}

// Pos returns how many entries this cursor has consumed.
func (cu *Cursor) Pos() int { return cu.pos }

// Buffered returns how many entries beyond the cursor's position are
// already buffered on the list: the number of Next calls that are
// guaranteed not to touch the source.
func (cu *Cursor) Buffered() int { return cu.list.Buffered() - cu.pos }

// Prefetch buffers the next n entries past the cursor's position (see
// Counted.Prefetch): free readahead, paid only on consumption.
func (cu *Cursor) Prefetch(n int) { cu.list.Prefetch(cu.pos + n) }

// StartPrefetch attaches a background prefetch pipeline to the cursor's
// list (see Counted.StartPrefetch); idempotent.
func (cu *Cursor) StartPrefetch(depth, maxDepth int) { cu.list.StartPrefetch(depth, maxDepth) }

// AbortPrefetch closes the list's pipeline without waiting for an
// in-flight batch (see Counted.AbortPrefetch).
func (cu *Cursor) AbortPrefetch() { cu.list.AbortPrefetch() }

// DemandAhead tells the list's pipeline the cursor will need its next n
// entries, so the worker can start fetching before anyone blocks. No-op
// without a pipeline.
func (cu *Cursor) DemandAhead(n int) {
	if cu.list.pipe == nil || cu.list.fenced {
		return
	}
	cu.list.pipe.demand(cu.pos + n)
}

// AwaitAhead blocks until the next n entries past the cursor are
// buffered on the list (clamped to the list end), the list is fenced,
// the pipeline closes, or stop fires; it reports whether the entries are
// buffered. Without a pipeline it stages synchronously, like Prefetch.
// The wait itself never touches the tallies: everything readied here is
// paid for only when the cursor consumes it.
func (cu *Cursor) AwaitAhead(n int, stop <-chan struct{}) bool {
	c := cu.list
	if c.fenced {
		return false
	}
	want := cu.pos + n
	if want > c.length {
		want = c.length
	}
	if want <= len(c.prefix) {
		return true
	}
	if c.pipe == nil {
		c.bufferAhead(want)
		return want <= len(c.prefix)
	}
	for want > len(c.prefix) {
		ok := c.pipe.await(want, stop)
		c.prefix = c.pipe.drainInto(c.prefix)
		if !ok {
			// The pipeline closed — benignly (fence, abort) or on a
			// terminal source failure. Either way staging is readahead:
			// the shortfall is reported but nothing is recorded; the
			// failure becomes the list's sticky error only when a
			// consumer demands the missing rank (see bufferAhead).
			break
		}
	}
	return want <= len(c.prefix)
}

// LastGrade returns the grade of the most recent entry this cursor
// consumed: the smallest grade it has seen, since grades arrive in
// descending order. Before any read it returns 1, the neutral upper
// bound. The value is cached at read time, so polling frontiers (as the
// adaptive scheduler does every round) costs no source access.
func (cu *Cursor) LastGrade() float64 { return cu.last }

// Exhausted reports whether the cursor has consumed the whole list, the
// list was fenced, the list's source failed, or the stream ran dry (a
// work-stealing truncated view delivered its last in-range rank) — in
// every case a closed stream with nothing further to consume.
func (cu *Cursor) Exhausted() bool {
	return cu.list.fenced || cu.list.serr != nil || cu.pos >= cu.list.Len() ||
		(cu.list.dry && cu.pos >= len(cu.list.prefix))
}
