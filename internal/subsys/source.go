package subsys

import (
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
)

// Source is a subsystem's materialized answer to one atomic query,
// supporting the two access modes of Section 4. Rank 0 is the best match.
// Grade returns 0 for objects the source does not grade (a predicate that
// is false grades 0).
type Source interface {
	// Len returns the number of graded objects.
	Len() int
	// Entry performs sorted access: the entry at the given rank.
	Entry(rank int) gradedset.Entry
	// Grade performs random access: the grade of the given object.
	Grade(obj int) float64
}

// ListSource adapts a gradedset.List to the Source interface.
type ListSource struct {
	list *gradedset.List
}

// FromList wraps a graded list as a Source.
func FromList(l *gradedset.List) ListSource { return ListSource{list: l} }

// Len implements Source.
func (s ListSource) Len() int { return s.list.Len() }

// Entry implements Source.
func (s ListSource) Entry(rank int) gradedset.Entry { return s.list.Entry(rank) }

// Grade implements Source; absent objects grade 0.
func (s ListSource) Grade(obj int) float64 {
	g, err := s.list.Grade(obj)
	if err != nil {
		return 0
	}
	return g
}

// Counted wraps a Source with access metering and memoization. It is the
// object algorithms actually touch: every grade that reaches an algorithm
// has been paid for exactly once, so the counters are the S and R of the
// Section 5 cost model by construction.
//
// Sorted access is sequential within the subsystem — to see rank r the
// middleware must have received ranks 0…r — but the middleware caches
// everything it has received, so re-reading an already-delivered rank
// (for example when a later phase of a plan rescans a prefix) costs
// nothing. The sorted cost of a list is therefore its high-water mark:
// the deepest prefix ever requested.
type Counted struct {
	src     Source
	fetched int // high-water mark: entries delivered by sorted access
	random  int // R for this list
	known   map[int]float64
}

// Count wraps src for metered access.
func Count(src Source) *Counted {
	return &Counted{src: src, known: make(map[int]float64)}
}

// CountAll wraps each source of a list.
func CountAll(srcs []Source) []*Counted {
	out := make([]*Counted, len(srcs))
	for i, s := range srcs {
		out[i] = Count(s)
	}
	return out
}

// Len returns the number of graded objects.
func (c *Counted) Len() int { return c.src.Len() }

// Depth returns the high-water mark of sorted access.
func (c *Counted) Depth() int { return c.fetched }

// EntryAt returns the entry at the given rank via sorted access,
// advancing (and paying for) the prefix up to that rank if it has not
// been delivered before. ok is false beyond the end of the list.
func (c *Counted) EntryAt(rank int) (e gradedset.Entry, ok bool) {
	if rank < 0 || rank >= c.src.Len() {
		return gradedset.Entry{}, false
	}
	for c.fetched <= rank {
		got := c.src.Entry(c.fetched)
		c.known[got.Object] = got.Grade
		c.fetched++
	}
	return c.src.Entry(rank), true
}

// Grade performs random access for obj. If the grade is already known to
// the middleware — from earlier sorted or random access on this list —
// the cached value is returned at no cost, per Section 4's observation
// that no access is needed for objects already seen.
func (c *Counted) Grade(obj int) float64 {
	if g, ok := c.known[obj]; ok {
		return g
	}
	g := c.src.Grade(obj)
	c.random++
	c.known[obj] = g
	return g
}

// Known reports the grade of obj if it has already been paid for.
func (c *Counted) Known(obj int) (float64, bool) {
	g, ok := c.known[obj]
	return g, ok
}

// Seen returns every object whose grade in this list is known, in
// unspecified order.
func (c *Counted) Seen() []int {
	objs := make([]int, 0, len(c.known))
	for obj := range c.known {
		objs = append(objs, obj)
	}
	return objs
}

// Cost returns this list's access tallies so far.
func (c *Counted) Cost() cost.Cost {
	return cost.Cost{Sorted: c.fetched, Random: c.random}
}

// TotalCost sums the tallies across lists.
func TotalCost(cs []*Counted) cost.Cost {
	var total cost.Cost
	for _, c := range cs {
		total = total.Add(c.Cost())
	}
	return total
}

// Cursor is one consumer's position in a list's sorted stream. Several
// cursors (phases of a plan, pages of a paginated query) can read the
// same Counted list; overlapping prefixes are paid for once.
type Cursor struct {
	list *Counted
	pos  int
}

// NewCursor returns a cursor at the top of the list.
func NewCursor(list *Counted) *Cursor { return &Cursor{list: list} }

// Cursors returns one fresh cursor per list.
func Cursors(lists []*Counted) []*Cursor {
	out := make([]*Cursor, len(lists))
	for i, l := range lists {
		out[i] = NewCursor(l)
	}
	return out
}

// Next returns the next entry in descending grade order, or ok = false at
// the end of the list.
func (cu *Cursor) Next() (e gradedset.Entry, ok bool) {
	e, ok = cu.list.EntryAt(cu.pos)
	if ok {
		cu.pos++
	}
	return e, ok
}

// Pos returns how many entries this cursor has consumed.
func (cu *Cursor) Pos() int { return cu.pos }

// LastGrade returns the grade of the most recent entry this cursor
// consumed: the smallest grade it has seen, since grades arrive in
// descending order. Before any read it returns 1, the neutral upper
// bound.
func (cu *Cursor) LastGrade() float64 {
	if cu.pos == 0 {
		return 1
	}
	e, _ := cu.list.EntryAt(cu.pos - 1)
	return e.Grade
}

// Exhausted reports whether the cursor has consumed the whole list.
func (cu *Cursor) Exhausted() bool { return cu.pos >= cu.list.Len() }
