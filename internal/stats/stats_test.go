package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if v := Variance(xs); v != 1.25 {
		t.Errorf("Variance = %v, want 1.25", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Error("empty/singleton edge cases wrong")
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("Q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 2.5 {
		t.Errorf("median = %v, want 2.5", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Summarize(nil) should fail")
	}
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if p := ECDF(xs, 2.5); p != 0.5 {
		t.Errorf("ECDF(2.5) = %v", p)
	}
	if p := ECDF(xs, 0); p != 0 {
		t.Errorf("ECDF(0) = %v", p)
	}
	if p := ECDF(xs, 10); p != 1 {
		t.Errorf("ECDF(10) = %v", p)
	}
	if p := ECDF(nil, 1); p != 0 {
		t.Errorf("ECDF(empty) = %v", p)
	}
}

func TestFitPowerExact(t *testing.T) {
	// y = 3 x^0.5 exactly.
	xs := []float64{1, 4, 9, 16, 100}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Sqrt(x)
	}
	fit, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-0.5) > 1e-9 {
		t.Errorf("Exponent = %v, want 0.5", fit.Exponent)
	}
	if math.Abs(fit.Coeff-3) > 1e-9 {
		t.Errorf("Coeff = %v, want 3", fit.Coeff)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestFitPowerSkipsNonPositive(t *testing.T) {
	xs := []float64{0, -1, 1, 2, 4}
	ys := []float64{5, 5, 2, 4, 8}
	fit, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-1) > 1e-9 {
		t.Errorf("Exponent = %v, want 1 (y=2x)", fit.Exponent)
	}
	if _, err := FitPower([]float64{1}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("single point should fail")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

// Property: fitting noisy power-law data recovers the exponent within a
// loose tolerance.
func TestFitPowerNoisyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		exp := 0.25 + rng.Float64() // 0.25..1.25
		var xs, ys []float64
		for x := 10.0; x <= 1e5; x *= 2 {
			noise := 0.95 + 0.1*rng.Float64()
			xs = append(xs, x)
			ys = append(ys, 2*math.Pow(x, exp)*noise)
		}
		fit, err := FitPower(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Exponent-exp) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
