// Package stats provides the small statistical substrate the experiment
// harness needs: summary statistics over trial costs, empirical CDFs for
// the lower-bound envelope of Theorem 6.4, and log-log least-squares
// fitting to estimate the scaling exponents of Theorem 5.3 from measured
// costs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports an operation over no samples.
var ErrEmpty = errors.New("stats: no samples")

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Max         float64
	Median, P90, P99 float64
}

// Summarize computes a Summary. It returns ErrEmpty for an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs)}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = quantileSorted(sorted, 0.5)
	s.P90 = quantileSorted(sorted, 0.9)
	s.P99 = quantileSorted(sorted, 0.99)
	return s, nil
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
// It returns 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF returns the empirical CDF evaluated at x: the fraction of samples
// ≤ x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// PowerFit is the result of fitting y ≈ coeff · x^exponent by least
// squares on (log x, log y).
type PowerFit struct {
	Exponent float64
	Coeff    float64
	// R2 is the coefficient of determination of the log-log regression.
	R2 float64
}

// FitPower fits a power law to positive (x, y) pairs. It returns ErrEmpty
// when fewer than two usable points remain (non-positive values are
// skipped, since their logarithms do not exist).
func FitPower(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) {
		return PowerFit{}, errors.New("stats: length mismatch")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return PowerFit{}, ErrEmpty
	}
	slope, intercept, r2 := linearFit(lx, ly)
	return PowerFit{Exponent: slope, Coeff: math.Exp(intercept), R2: r2}, nil
}

// linearFit returns the least-squares slope, intercept, and R² of y on x.
func linearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}
