package agg

import (
	"fmt"
	"math"
)

// Parameterized t-norm families. Section 3 surveys individual t-norms;
// the fuzzy-logic literature it draws on (Dubois–Prade, Zimmermann)
// organizes them into one-parameter families that sweep continuously
// between the extreme norms (drastic product at one end, min at the
// other) and pass through the classical members on the way. The paper's
// bounds apply uniformly across every member — all are monotone and
// strict — which makes the families the natural parameter sweep for the
// robustness experiment (E12).
//
// Each constructor validates its parameter and clamps floating-point
// roundoff back into [0, 1].

// YagerTNorm returns the Yager family member
//
//	t_p(x,y) = max(0, 1 − ((1−x)^p + (1−y)^p)^(1/p)),   p > 0.
//
// p = 1 is the bounded difference; p → ∞ approaches min; p → 0
// approaches the drastic product. It panics if p ≤ 0.
func YagerTNorm(p float64) TNorm {
	if p <= 0 {
		panic(fmt.Sprintf("agg: YagerTNorm(%v): p must be > 0", p))
	}
	return NewTNorm(fmt.Sprintf("yager(%g)", p), func(x, y float64) float64 {
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		s := math.Pow(1-x, p) + math.Pow(1-y, p)
		v := 1 - math.Pow(s, 1/p)
		return clamp01(v)
	})
}

// HamacherFamily returns the Hamacher family member
//
//	t_γ(x,y) = xy / (γ + (1−γ)(x+y−xy)),   γ ≥ 0.
//
// γ = 0 is the Hamacher product, γ = 1 the algebraic product, γ = 2 the
// Einstein product. It panics if γ < 0.
func HamacherFamily(gamma float64) TNorm {
	if gamma < 0 {
		panic(fmt.Sprintf("agg: HamacherFamily(%v): gamma must be >= 0", gamma))
	}
	return NewTNorm(fmt.Sprintf("hamacher(%g)", gamma), func(x, y float64) float64 {
		if x == 0 || y == 0 {
			return 0
		}
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		d := gamma + (1-gamma)*(x+y-x*y)
		if d <= 0 {
			return 0
		}
		return clamp01(x * y / d)
	})
}

// FrankTNorm returns the Frank family member
//
//	t_s(x,y) = log_s(1 + (s^x − 1)(s^y − 1)/(s − 1)),   s > 0, s ≠ 1.
//
// s → 0 approaches min, s → 1 the algebraic product, s → ∞ the bounded
// difference. It panics if s ≤ 0 or s = 1 (use AlgebraicProduct for the
// limit).
func FrankTNorm(s float64) TNorm {
	if s <= 0 || s == 1 {
		panic(fmt.Sprintf("agg: FrankTNorm(%v): s must be positive and != 1", s))
	}
	lnS := math.Log(s)
	return NewTNorm(fmt.Sprintf("frank(%g)", s), func(x, y float64) float64 {
		if x == 0 || y == 0 {
			return 0
		}
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		num := (math.Pow(s, x) - 1) * (math.Pow(s, y) - 1)
		v := math.Log1p(num/(s-1)) / lnS
		return clamp01(v)
	})
}

// DombiTNorm returns the Dombi family member
//
//	t_λ(x,y) = 1 / (1 + (((1−x)/x)^λ + ((1−y)/y)^λ)^(1/λ)),   λ > 0,
//
// with t(x,y) = 0 when either argument is 0. λ → ∞ approaches min, λ → 0
// the drastic product. It panics if λ ≤ 0.
func DombiTNorm(lambda float64) TNorm {
	if lambda <= 0 {
		panic(fmt.Sprintf("agg: DombiTNorm(%v): lambda must be > 0", lambda))
	}
	return NewTNorm(fmt.Sprintf("dombi(%g)", lambda), func(x, y float64) float64 {
		if x == 0 || y == 0 {
			return 0
		}
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		a := math.Pow((1-x)/x, lambda)
		b := math.Pow((1-y)/y, lambda)
		v := 1 / (1 + math.Pow(a+b, 1/lambda))
		return clamp01(v)
	})
}

// SchweizerSklarTNorm returns the Schweizer–Sklar family member
//
//	t_p(x,y) = max(0, x^p + y^p − 1)^(1/p),   p > 0.
//
// p = 1 is the bounded difference; p → 0 approaches the algebraic
// product. (Negative p gives further members; this constructor covers the
// positive branch and panics otherwise.)
func SchweizerSklarTNorm(p float64) TNorm {
	if p <= 0 {
		panic(fmt.Sprintf("agg: SchweizerSklarTNorm(%v): p must be > 0", p))
	}
	return NewTNorm(fmt.Sprintf("schweizer-sklar(%g)", p), func(x, y float64) float64 {
		if x == 0 || y == 0 {
			return 0
		}
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		s := math.Pow(x, p) + math.Pow(y, p) - 1
		if s <= 0 {
			return 0
		}
		return clamp01(math.Pow(s, 1/p))
	})
}
