package agg

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// This file provides empirical verifiers for the axioms of Section 3. They
// are used by the test suite to confirm the Monotone/Strict metadata each
// Func carries, and are exported so downstream users can sanity-check
// custom aggregation functions before trusting A₀'s correctness with them.

// grid returns an evenly spaced sample of [0,1] with n+1 points including
// both endpoints.
func grid(n int) []float64 {
	gs := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		gs[i] = float64(i) / float64(n)
	}
	return gs
}

const verifyEps = 1e-9

// VerifyConservationTNorm checks ∧-conservation on a grid: t(0,0) = 0 and
// t(x,1) = t(1,x) = x.
func VerifyConservationTNorm(t TNorm, gridSize int) error {
	if got := t.Combine(0, 0); math.Abs(got) > verifyEps {
		return fmt.Errorf("%s: t(0,0) = %v, want 0", t.Name(), got)
	}
	for _, x := range grid(gridSize) {
		if got := t.Combine(x, 1); math.Abs(got-x) > verifyEps {
			return fmt.Errorf("%s: t(%v,1) = %v, want %v", t.Name(), x, got, x)
		}
		if got := t.Combine(1, x); math.Abs(got-x) > verifyEps {
			return fmt.Errorf("%s: t(1,%v) = %v, want %v", t.Name(), x, got, x)
		}
	}
	return nil
}

// VerifyConservationCoNorm checks ∨-conservation on a grid: s(1,1) = 1 and
// s(x,0) = s(0,x) = x.
func VerifyConservationCoNorm(s CoNorm, gridSize int) error {
	if got := s.Combine(1, 1); math.Abs(got-1) > verifyEps {
		return fmt.Errorf("%s: s(1,1) = %v, want 1", s.Name(), got)
	}
	for _, x := range grid(gridSize) {
		if got := s.Combine(x, 0); math.Abs(got-x) > verifyEps {
			return fmt.Errorf("%s: s(%v,0) = %v, want %v", s.Name(), x, got, x)
		}
		if got := s.Combine(0, x); math.Abs(got-x) > verifyEps {
			return fmt.Errorf("%s: s(0,%v) = %v, want %v", s.Name(), x, got, x)
		}
	}
	return nil
}

// VerifyCommutative2 checks f(x,y) = f(y,x) on a grid for a 2-ary combine.
func VerifyCommutative2(name string, f func(x, y float64) float64, gridSize int) error {
	for _, x := range grid(gridSize) {
		for _, y := range grid(gridSize) {
			if math.Abs(f(x, y)-f(y, x)) > verifyEps {
				return fmt.Errorf("%s: f(%v,%v) != f(%v,%v)", name, x, y, y, x)
			}
		}
	}
	return nil
}

// VerifyAssociative2 checks f(f(x,y),z) = f(x,f(y,z)) on a grid.
func VerifyAssociative2(name string, f func(x, y float64) float64, gridSize int) error {
	for _, x := range grid(gridSize) {
		for _, y := range grid(gridSize) {
			for _, z := range grid(gridSize) {
				l := f(f(x, y), z)
				r := f(x, f(y, z))
				if math.Abs(l-r) > 1e-6 {
					return fmt.Errorf("%s: assoc fails at (%v,%v,%v): %v vs %v", name, x, y, z, l, r)
				}
			}
		}
	}
	return nil
}

// VerifyMonotone2 checks 2-ary monotonicity on a grid: f(x,y) ≤ f(x',y')
// whenever x ≤ x' and y ≤ y'.
func VerifyMonotone2(name string, f func(x, y float64) float64, gridSize int) error {
	gs := grid(gridSize)
	for i, x := range gs {
		for j, y := range gs {
			for _, x2 := range gs[i:] {
				for _, y2 := range gs[j:] {
					if f(x, y) > f(x2, y2)+verifyEps {
						return fmt.Errorf("%s: f(%v,%v) > f(%v,%v)", name, x, y, x2, y2)
					}
				}
			}
		}
	}
	return nil
}

// VerifyEnvelope checks drastic ≤ t ≤ min on a grid, the property from
// which strictness of every t-norm follows (Section 3).
func VerifyEnvelope(t TNorm, gridSize int) error {
	for _, x := range grid(gridSize) {
		for _, y := range grid(gridSize) {
			v := t.Combine(x, y)
			lo := DrasticProduct.Combine(x, y)
			hi := MinNorm.Combine(x, y)
			if v < lo-verifyEps || v > hi+verifyEps {
				return fmt.Errorf("%s: t(%v,%v)=%v outside [%v,%v]", t.Name(), x, y, v, lo, hi)
			}
		}
	}
	return nil
}

// CheckTNormAxioms verifies all four t-norm axioms plus the envelope, on a
// grid of the given resolution.
func CheckTNormAxioms(t TNorm, gridSize int) error {
	if err := VerifyConservationTNorm(t, gridSize); err != nil {
		return err
	}
	if err := VerifyCommutative2(t.Name(), t.Combine, gridSize); err != nil {
		return err
	}
	if err := VerifyAssociative2(t.Name(), t.Combine, gridSize); err != nil {
		return err
	}
	if err := VerifyMonotone2(t.Name(), t.Combine, gridSize); err != nil {
		return err
	}
	return VerifyEnvelope(t, gridSize)
}

// CheckCoNormAxioms verifies all four co-norm axioms on a grid.
func CheckCoNormAxioms(s CoNorm, gridSize int) error {
	if err := VerifyConservationCoNorm(s, gridSize); err != nil {
		return err
	}
	if err := VerifyCommutative2(s.Name(), s.Combine, gridSize); err != nil {
		return err
	}
	if err := VerifyAssociative2(s.Name(), s.Combine, gridSize); err != nil {
		return err
	}
	return VerifyMonotone2(s.Name(), s.Combine, gridSize)
}

// VerifyMonotone randomly samples pairs of dominated grade vectors of the
// given arity and checks f's monotonicity on them. It returns the first
// counterexample found, or nil.
func VerifyMonotone(f Func, arity, samples int, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, 0xa99))
	lo := make([]float64, arity)
	hi := make([]float64, arity)
	for s := 0; s < samples; s++ {
		for i := 0; i < arity; i++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		if f.Apply(lo) > f.Apply(hi)+verifyEps {
			return fmt.Errorf("%s: f(%v) > f(%v)", f.Name(), lo, hi)
		}
	}
	return nil
}

// VerifyStrict checks strictness at the given arity: f(1,…,1) = 1, and
// degrading any single coordinate (and random subsets) drops the value
// below 1. It returns the first counterexample found, or nil.
func VerifyStrict(f Func, arity, samples int, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, 0x57f))
	ones := make([]float64, arity)
	for i := range ones {
		ones[i] = 1
	}
	if got := f.Apply(ones); math.Abs(got-1) > verifyEps {
		return fmt.Errorf("%s: f(1,…,1) = %v, want 1", f.Name(), got)
	}
	gs := make([]float64, arity)
	for s := 0; s < samples; s++ {
		copy(gs, ones)
		// Degrade a random nonempty subset of coordinates.
		n := 1 + rng.IntN(arity)
		for j := 0; j < n; j++ {
			gs[rng.IntN(arity)] = rng.Float64() * 0.999
		}
		if got := f.Apply(gs); got >= 1-verifyEps {
			return fmt.Errorf("%s: f(%v) = %v, want < 1", f.Name(), gs, got)
		}
	}
	return nil
}
