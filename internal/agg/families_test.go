package agg

import (
	"math"
	"testing"
)

// familyMembers enumerates representative members of every family.
func familyMembers() []TNorm {
	return []TNorm{
		YagerTNorm(0.5), YagerTNorm(1), YagerTNorm(2), YagerTNorm(5),
		HamacherFamily(0), HamacherFamily(0.5), HamacherFamily(1), HamacherFamily(2), HamacherFamily(5),
		FrankTNorm(0.1), FrankTNorm(2), FrankTNorm(10),
		DombiTNorm(0.5), DombiTNorm(1), DombiTNorm(2),
		SchweizerSklarTNorm(0.5), SchweizerSklarTNorm(1), SchweizerSklarTNorm(2),
	}
}

// Every family member must satisfy all t-norm axioms: conservation,
// commutativity, associativity, monotonicity, and the drastic ≤ t ≤ min
// envelope from which strictness follows.
func TestFamilyAxioms(t *testing.T) {
	for _, tn := range familyMembers() {
		tn := tn
		t.Run(tn.Name(), func(t *testing.T) {
			if err := CheckTNormAxioms(tn, 10); err != nil {
				t.Error(err)
			}
		})
	}
}

// Family members are monotone+strict as m-ary iterated functions, so the
// paper's upper AND lower bounds apply to all of them.
func TestFamilyStrictness(t *testing.T) {
	for _, tn := range familyMembers() {
		for _, arity := range []int{2, 4} {
			if err := VerifyMonotone(tn, arity, 300, 81); err != nil {
				t.Errorf("%s: %v", tn.Name(), err)
			}
			if err := VerifyStrict(tn, arity, 300, 82); err != nil {
				t.Errorf("%s: %v", tn.Name(), err)
			}
		}
	}
}

// Known coincidences at specific parameters.
func TestFamilyClassicalMembers(t *testing.T) {
	agree := func(name string, a, b TNorm, tol float64) {
		for _, x := range grid(20) {
			for _, y := range grid(20) {
				if math.Abs(a.Combine(x, y)-b.Combine(x, y)) > tol {
					t.Errorf("%s: %v vs %v at (%v,%v)", name, a.Combine(x, y), b.Combine(x, y), x, y)
					return
				}
			}
		}
	}
	agree("yager(1) = bounded difference", YagerTNorm(1), BoundedDifference, 1e-12)
	agree("hamacher(0) = hamacher product", HamacherFamily(0), HamacherProduct, 1e-12)
	agree("hamacher(1) = algebraic product", HamacherFamily(1), AlgebraicProduct, 1e-12)
	agree("hamacher(2) = einstein product", HamacherFamily(2), EinsteinProduct, 1e-12)
	agree("schweizer-sklar(1) = bounded difference", SchweizerSklarTNorm(1), BoundedDifference, 1e-12)
	// Frank s → 1 approaches the algebraic product.
	agree("frank(1.0001) ~ product", FrankTNorm(1.0001), AlgebraicProduct, 1e-3)
}

// Limit behaviour: large parameters approach min (Yager, Dombi); small
// Yager parameters approach the drastic product.
func TestFamilyLimits(t *testing.T) {
	big := YagerTNorm(200)
	for _, x := range grid(10) {
		for _, y := range grid(10) {
			if math.Abs(big.Combine(x, y)-MinNorm.Combine(x, y)) > 0.02 {
				t.Errorf("yager(200)(%v,%v) = %v, min = %v", x, y, big.Combine(x, y), MinNorm.Combine(x, y))
			}
		}
	}
	bigD := DombiTNorm(100)
	for _, x := range grid(10) {
		for _, y := range grid(10) {
			if math.Abs(bigD.Combine(x, y)-MinNorm.Combine(x, y)) > 0.02 {
				t.Errorf("dombi(100)(%v,%v) = %v, min = %v", x, y, bigD.Combine(x, y), MinNorm.Combine(x, y))
			}
		}
	}
	// Small Yager p: everything interior collapses toward 0.
	tiny := YagerTNorm(0.05)
	if v := tiny.Combine(0.9, 0.9); v > 0.3 {
		t.Errorf("yager(0.05)(0.9,0.9) = %v, want near drastic (0)", v)
	}
}

// Family ordering in the parameter: Yager and Dombi are increasing in
// their parameter (pointwise).
func TestFamilyParameterMonotone(t *testing.T) {
	pairs := [][2]TNorm{
		{YagerTNorm(0.5), YagerTNorm(2)},
		{YagerTNorm(2), YagerTNorm(10)},
		{DombiTNorm(0.5), DombiTNorm(2)},
	}
	for _, pr := range pairs {
		lo, hi := pr[0], pr[1]
		for _, x := range grid(10) {
			for _, y := range grid(10) {
				if lo.Combine(x, y) > hi.Combine(x, y)+1e-9 {
					t.Errorf("%s(%v,%v)=%v above %s=%v", lo.Name(), x, y, lo.Combine(x, y), hi.Name(), hi.Combine(x, y))
				}
			}
		}
	}
}

// Duals of family members satisfy the co-norm axioms.
func TestFamilyDualsAreCoNorms(t *testing.T) {
	for _, tn := range []TNorm{YagerTNorm(2), HamacherFamily(0.5), FrankTNorm(2), DombiTNorm(1)} {
		if err := CheckCoNormAxioms(DualCoNorm(tn), 8); err != nil {
			t.Errorf("%s dual: %v", tn.Name(), err)
		}
	}
}

func TestFamilyParameterValidation(t *testing.T) {
	cases := []func(){
		func() { YagerTNorm(0) },
		func() { YagerTNorm(-1) },
		func() { HamacherFamily(-0.1) },
		func() { FrankTNorm(1) },
		func() { FrankTNorm(0) },
		func() { FrankTNorm(-2) },
		func() { DombiTNorm(0) },
		func() { SchweizerSklarTNorm(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on invalid parameter", i)
				}
			}()
			f()
		}()
	}
}
