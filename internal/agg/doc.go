// Package agg implements the aggregation functions of Section 3: the rules
// that assign a grade to a Boolean combination of atomic queries as a
// function of the grades of its parts.
//
// An m-ary aggregation function is a function from [0,1]^m to [0,1]. The
// paper's algorithmic results need exactly two properties of it:
//
//   - Monotonicity: t(x₁,…,xₘ) ≤ t(x₁′,…,xₘ′) whenever xᵢ ≤ xᵢ′ for all i.
//     Monotonicity makes algorithm A₀ correct (Theorem 4.2) and drives the
//     sublinear upper bound (Theorem 5.3).
//   - Strictness: t(x₁,…,xₘ) = 1 iff every xᵢ = 1. Strictness drives the
//     matching lower bound (Theorem 6.4).
//
// The package ships the full zoo the paper surveys: the standard fuzzy
// rules min and max [Za65]; the classical triangular norms and co-norms
// (drastic, bounded difference/sum, Einstein, algebraic, Hamacher)
// [SS63, DP80, BD86, Mi89]; arithmetic and geometric means (monotone and
// strict but not t-norms) [TZZ79]; the median and the gymnastics rule
// (monotone but not strict — the cases where the lower bound fails,
// Remark 6.1); and weighted aggregation following Fagin–Wimmers [FW97].
//
// Property metadata is carried on each Func, and the package also provides
// empirical verifiers (grid and randomized) used by the test suite to
// confirm the metadata against the definitions, mirroring the paper's
// axiomatic treatment (7-conservation, commutativity, associativity,
// monotonicity, and the drastic ≤ t ≤ min envelope).
package agg
