package agg

// CoNorm is a triangular co-norm [DP85]: a 2-ary aggregation function
// satisfying ∨-conservation (s(1,1)=1, s(x,0)=s(0,x)=x), monotonicity,
// commutativity, and associativity. Co-norms evaluate disjunctions. Like
// TNorm, CoNorm implements Func by iterating the 2-ary function.
//
// Iterated co-norms are monotone but not strict: s(1, 0) = 1, so the
// Θ(N^((m−1)/m)k^(1/m)) lower bound does not apply to disjunctions — and
// indeed B₀ answers the standard fuzzy disjunction with cost mk.
type CoNorm struct {
	name    string
	combine func(x, y float64) float64
}

// NewCoNorm wraps a 2-ary function asserted to satisfy the co-norm axioms.
// The axioms are not checked here; use CheckCoNormAxioms in tests.
func NewCoNorm(name string, combine func(x, y float64) float64) CoNorm {
	return CoNorm{name: name, combine: combine}
}

// Name implements Func.
func (s CoNorm) Name() string { return s.name }

// Combine evaluates the underlying 2-ary function.
func (s CoNorm) Combine(x, y float64) float64 { return s.combine(x, y) }

// Apply evaluates the m-ary iterated form. The empty disjunction is 0
// (the co-norm identity).
func (s CoNorm) Apply(gs []float64) float64 {
	if len(gs) == 0 {
		return 0
	}
	acc := gs[0]
	for _, g := range gs[1:] {
		acc = s.combine(acc, g)
	}
	return acc
}

// Monotone implements Func; every co-norm is monotone.
func (s CoNorm) Monotone() bool { return true }

// Strict implements Func; no co-norm is strict (s(1,0) = 1).
func (s CoNorm) Strict() bool { return false }

// The co-norms catalogued in Section 3, duals of the corresponding
// t-norms.
var (
	// MaxNorm is max as a CoNorm (the standard rule; the smallest co-norm).
	MaxNorm = NewCoNorm("max", func(x, y float64) float64 {
		if x > y {
			return x
		}
		return y
	})

	// DrasticSum is the largest co-norm: max(x,y) if min(x,y)=0, else 1.
	DrasticSum = NewCoNorm("drastic-sum", func(x, y float64) float64 {
		switch {
		case x == 0:
			return y
		case y == 0:
			return x
		default:
			return 1
		}
	})

	// BoundedSum is min(1, x+y).
	BoundedSum = NewCoNorm("bounded-sum", func(x, y float64) float64 {
		if s := x + y; s < 1 {
			return s
		}
		return 1
	})

	// EinsteinSum is (x+y) / (1 + xy), with exact boundary cases and
	// clamped against roundoff.
	EinsteinSum = NewCoNorm("einstein-sum", func(x, y float64) float64 {
		if x == 1 || y == 1 {
			return 1
		}
		if x == 0 {
			return y
		}
		if y == 0 {
			return x
		}
		return clamp01((x + y) / (1 + x*y))
	})

	// AlgebraicSum is x + y − xy.
	AlgebraicSum = NewCoNorm("algebraic-sum", func(x, y float64) float64 {
		return x + y - x*y
	})

	// HamacherSum is (x + y − 2xy) / (1 − xy), with s(1,1) = 1 by
	// continuity of the family (the formula is 0/0 there). The quotient is
	// clamped to [0,1] to keep floating-point roundoff from leaking grades
	// marginally above 1 into iterated applications.
	HamacherSum = NewCoNorm("hamacher-sum", func(x, y float64) float64 {
		// Exact boundary cases first: the rational form is ill-conditioned
		// near 1 and roundoff would otherwise compound under iteration.
		if x == 1 || y == 1 {
			return 1
		}
		if x == 0 {
			return y
		}
		if y == 0 {
			return x
		}
		d := 1 - x*y
		if d <= 0 {
			return 1
		}
		return clamp01((x + y - 2*x*y) / d)
	})
)

// CoNorms returns the catalogue of built-in co-norms, ordered from the
// smallest (max) to the largest (drastic sum).
func CoNorms() []CoNorm {
	return []CoNorm{
		MaxNorm,
		HamacherSum,
		AlgebraicSum,
		EinsteinSum,
		BoundedSum,
		DrasticSum,
	}
}

// DualCoNorm derives the co-norm of a t-norm through the standard
// negation: s(x,y) = 1 − t(1−x, 1−y) [Al85].
func DualCoNorm(t TNorm) CoNorm {
	return NewCoNorm(t.Name()+"-dual", func(x, y float64) float64 {
		return 1 - t.Combine(1-x, 1-y)
	})
}

// DualTNorm derives the t-norm of a co-norm through the standard negation:
// t(x,y) = 1 − s(1−x, 1−y).
func DualTNorm(s CoNorm) TNorm {
	return NewTNorm(s.Name()+"-dual", func(x, y float64) float64 {
		return 1 - s.Combine(1-x, 1-y)
	})
}
