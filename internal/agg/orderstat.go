package agg

import (
	"fmt"
	"sort"
)

// orderStatistic implements the j-th largest argument as an aggregation
// function. OrderStatistic(1) is max, OrderStatistic(m) on m arguments is
// min, and OrderStatistic((m+1)/2) on odd m is the median.
//
// Order statistics are monotone. They are strict only in the j = arity
// (min) case; the median and its relatives are the paper's showcase
// non-strict functions for which the Θ lower bound fails (Remark 6.1).
type orderStatistic struct {
	j int
}

// OrderStatistic returns the aggregation function selecting the j-th
// largest grade (1-based). It panics if j < 1. Applying it to fewer than j
// grades yields 0.
func OrderStatistic(j int) Func {
	if j < 1 {
		panic(fmt.Sprintf("agg: OrderStatistic(%d): j must be >= 1", j))
	}
	return orderStatistic{j: j}
}

func (o orderStatistic) Name() string {
	if o.j == 1 {
		return "max"
	}
	return fmt.Sprintf("order-statistic-%d", o.j)
}

func (o orderStatistic) Apply(gs []float64) float64 {
	if o.j > len(gs) {
		return 0
	}
	tmp := append([]float64(nil), gs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(tmp)))
	return tmp[o.j-1]
}

func (o orderStatistic) Monotone() bool { return true }

// Strict reports false: for the variadic form there is always some arity
// (> j) at which a 1 can appear among non-1 arguments, e.g.
// OrderStatistic(1)(1, 0) = 1.
func (o orderStatistic) Strict() bool { return false }

// Median is the middle order statistic: for m arguments it returns the
// ⌈(m+1)/2⌉-th largest grade, i.e. the exact median for odd m and the
// lower median for even m. It is monotone but not strict (Remark 6.1), and
// for m = 3 it satisfies the decomposition
//
//	median(a₁,a₂,a₃) = max(min(a₁,a₂), min(a₁,a₃), min(a₂,a₃)),
//
// which yields an O(√(Nk)) evaluation algorithm via three pairwise-min A₀
// runs.
var Median Func = medianFunc{}

type medianFunc struct{}

func (medianFunc) Name() string { return "median" }

func (medianFunc) Apply(gs []float64) float64 {
	m := len(gs)
	if m == 0 {
		return 0
	}
	j := (m + 1 + 1) / 2 // ⌈(m+1)/2⌉: for m=3, j=2; m=5, j=3.
	return orderStatistic{j: j}.Apply(gs)
}

func (medianFunc) Monotone() bool { return true }
func (medianFunc) Strict() bool   { return false }

// Gymnastics models (artistic) gymnastics scoring: drop the single highest
// and single lowest grade and average the rest. With three judges it
// coincides with the median. It is monotone but not strict. It requires at
// least three grades; fewer yield 0.
var Gymnastics Func = gymnasticsFunc{}

type gymnasticsFunc struct{}

func (gymnasticsFunc) Name() string { return "gymnastics" }

func (gymnasticsFunc) Apply(gs []float64) float64 {
	if len(gs) < 3 {
		return 0
	}
	minIdx, maxIdx := 0, 0
	for i, g := range gs {
		if g < gs[minIdx] {
			minIdx = i
		}
		if g > gs[maxIdx] {
			maxIdx = i
		}
	}
	if minIdx == maxIdx { // all equal; drop any two distinct positions
		maxIdx = (minIdx + 1) % len(gs)
	}
	sum, n := 0.0, 0
	for i, g := range gs {
		if i == minIdx || i == maxIdx {
			continue
		}
		sum += g
		n++
	}
	return sum / float64(n)
}

func (gymnasticsFunc) Monotone() bool { return true }
func (gymnasticsFunc) Strict() bool   { return false }

// MedianDecomposition returns, for arity m, the subsets of {0,…,m−1} of
// size ⌈(m+1)/2⌉. By the order-statistic identity
//
//	j-th largest(a₁,…,aₘ) = max over all j-subsets S of min over S,
//
// the median equals the max of the per-subset mins, which lets a
// middleware evaluate a median query by running the min-algorithm A₀ on
// each subset and merging with B₀-style max (Remark 6.1 generalized).
func MedianDecomposition(m int) [][]int {
	j := (m + 2) / 2
	return Subsets(m, j)
}

// Subsets enumerates the size-j subsets of {0,…,m−1} in lexicographic
// order.
func Subsets(m, j int) [][]int {
	if j < 0 || j > m {
		return nil
	}
	var out [][]int
	cur := make([]int, 0, j)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == j {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= m-(j-len(cur)); i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
