package agg

// TNorm is a triangular norm [SS63, DP80]: a 2-ary aggregation function
// satisfying ∧-conservation (t(0,0)=0, t(x,1)=t(1,x)=x), monotonicity,
// commutativity, and associativity. Associativity lets an m-ary
// conjunction be evaluated by iterating the 2-ary function, which is how
// TNorm implements Func.
//
// Every iterated t-norm is monotone and strict: strictness follows from
// the fact that every t-norm is bounded below by the drastic product and
// above by min (Section 3), so both of the paper's bounds apply to every
// t-norm.
type TNorm struct {
	name    string
	combine func(x, y float64) float64
}

// NewTNorm wraps a 2-ary function asserted to satisfy the t-norm axioms.
// The axioms are not checked here; use CheckTNormAxioms in tests.
func NewTNorm(name string, combine func(x, y float64) float64) TNorm {
	return TNorm{name: name, combine: combine}
}

// Name implements Func.
func (t TNorm) Name() string { return t.name }

// Combine evaluates the underlying 2-ary function.
func (t TNorm) Combine(x, y float64) float64 { return t.combine(x, y) }

// Apply evaluates the m-ary iterated form t(…t(t(x₁,x₂),x₃)…,xₘ). The
// empty conjunction is 1 (the t-norm identity), and a single grade is
// returned unchanged.
func (t TNorm) Apply(gs []float64) float64 {
	if len(gs) == 0 {
		return 1
	}
	acc := gs[0]
	for _, g := range gs[1:] {
		acc = t.combine(acc, g)
	}
	return acc
}

// Monotone implements Func; every t-norm is monotone.
func (t TNorm) Monotone() bool { return true }

// Strict implements Func; every iterated t-norm is strict.
func (t TNorm) Strict() bool { return true }

// The t-norms catalogued in Section 3 [BD86, Mi89].
var (
	// MinNorm is min as a TNorm (the standard rule; the largest t-norm).
	MinNorm = NewTNorm("min", func(x, y float64) float64 {
		if x < y {
			return x
		}
		return y
	})

	// DrasticProduct is the smallest t-norm: min(x,y) if max(x,y)=1,
	// otherwise 0.
	DrasticProduct = NewTNorm("drastic-product", func(x, y float64) float64 {
		switch {
		case x == 1:
			return y
		case y == 1:
			return x
		default:
			return 0
		}
	})

	// BoundedDifference is the Łukasiewicz t-norm max(0, x+y−1).
	BoundedDifference = NewTNorm("bounded-difference", func(x, y float64) float64 {
		if s := x + y - 1; s > 0 {
			return s
		}
		return 0
	})

	// EinsteinProduct is xy / (2 − (x + y − xy)), with exact boundary
	// cases and clamped against roundoff.
	EinsteinProduct = NewTNorm("einstein-product", func(x, y float64) float64 {
		if x == 0 || y == 0 {
			return 0
		}
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		return clamp01(x * y / (2 - (x + y - x*y)))
	})

	// AlgebraicProduct is the probabilistic product xy.
	AlgebraicProduct = NewTNorm("algebraic-product", func(x, y float64) float64 {
		return x * y
	})

	// HamacherProduct is xy / (x + y − xy), with t(0,0) = 0 by continuity
	// of the family (the formula is 0/0 there). The quotient is clamped to
	// [0,1] against floating-point roundoff.
	HamacherProduct = NewTNorm("hamacher-product", func(x, y float64) float64 {
		// Exact boundary cases first: the rational form is ill-conditioned
		// near 0 and roundoff would otherwise compound under iteration.
		if x == 0 || y == 0 {
			return 0
		}
		if x == 1 {
			return y
		}
		if y == 1 {
			return x
		}
		d := x + y - x*y
		if d <= 0 {
			return 0
		}
		return clamp01(x * y / d)
	})
)

// clamp01 forces floating-point roundoff back into the grade interval.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// TNorms returns the catalogue of built-in t-norms, ordered from the
// largest (min) to the smallest (drastic product).
func TNorms() []TNorm {
	return []TNorm{
		MinNorm,
		HamacherProduct,
		AlgebraicProduct,
		EinsteinProduct,
		BoundedDifference,
		DrasticProduct,
	}
}
