package agg

import (
	"fmt"
	"sort"
)

// OWA is Yager's ordered weighted averaging operator: the grades are
// sorted in descending order and combined by a fixed weight vector,
//
//	OWA_w(x₁,…,xₘ) = Σᵢ wᵢ · x₍ᵢ₎,   x₍₁₎ ≥ x₍₂₎ ≥ … ≥ x₍ₘ₎,
//
// with wᵢ ≥ 0 and Σwᵢ = 1. The family interpolates the whole spectrum of
// Section 3's operators by choice of w:
//
//	(1, 0, …, 0)      → max
//	(0, …, 0, 1)      → min
//	(1/m, …, 1/m)     → arithmetic mean
//	e_{⌈(m+1)/2⌉}     → median
//	(0, 1/(m−2), …, 0) → the gymnastics rule
//
// Every OWA operator is monotone, so A₀ evaluates OWA queries correctly
// (Theorem 4.2). It is strict exactly when the last weight (the one
// applied to the minimum) is positive — the same strictness dichotomy
// that separates min (lower bound applies) from max and median (lower
// bound fails), now as a property of one parameter vector.
type OWA struct {
	weights []float64
}

// NewOWA validates the weight vector (nonnegative, summing to 1 within a
// small tolerance, then renormalized exactly).
func NewOWA(weights []float64) (*OWA, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: no weights", ErrBadWeights)
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("%w: negative weight %v", ErrBadWeights, w)
		}
		sum += w
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return nil, fmt.Errorf("%w: sum = %v", ErrBadWeights, sum)
	}
	ws := make([]float64, len(weights))
	for i, w := range weights {
		ws[i] = w / sum
	}
	return &OWA{weights: ws}, nil
}

// Name implements Func.
func (o *OWA) Name() string { return fmt.Sprintf("owa-%d", len(o.weights)) }

// Arity returns the required number of grades.
func (o *OWA) Arity() int { return len(o.weights) }

// Apply implements Func. It panics if the number of grades differs from
// the number of weights.
func (o *OWA) Apply(gs []float64) float64 {
	if len(gs) != len(o.weights) {
		panic(fmt.Sprintf("agg: OWA.Apply: %d grades for %d weights", len(gs), len(o.weights)))
	}
	sorted := append([]float64(nil), gs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	v := 0.0
	for i, w := range o.weights {
		v += w * sorted[i]
	}
	return clamp01(v)
}

// Monotone implements Func: increasing any argument cannot decrease any
// order statistic, and the weights are nonnegative.
func (o *OWA) Monotone() bool { return true }

// Strict implements Func: with weight on the minimum, the value is 1 only
// if the minimum is 1.
func (o *OWA) Strict() bool { return o.weights[len(o.weights)-1] > 0 }

// Orness is Yager's degree-of-disjunction measure: 1 for max, 0 for min,
// ½ for the mean. It summarizes where in the and–or spectrum the operator
// sits.
func (o *OWA) Orness() float64 {
	m := len(o.weights)
	if m == 1 {
		return 0.5
	}
	v := 0.0
	for i, w := range o.weights {
		v += w * float64(m-1-i)
	}
	return v / float64(m-1)
}
