package agg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMinMaxBasics(t *testing.T) {
	if got := Min.Apply([]float64{0.3, 0.7, 0.5}); got != 0.3 {
		t.Errorf("Min = %v, want 0.3", got)
	}
	if got := Max.Apply([]float64{0.3, 0.7, 0.5}); got != 0.7 {
		t.Errorf("Max = %v, want 0.7", got)
	}
	if got := Min.Apply(nil); got != 1 {
		t.Errorf("empty Min = %v, want 1", got)
	}
	if got := Max.Apply(nil); got != 0 {
		t.Errorf("empty Max = %v, want 0", got)
	}
}

func TestPropositionalConservation(t *testing.T) {
	// Restricted to {0,1} grades, min/max must reduce to Boolean and/or.
	bools := []float64{0, 1}
	for _, a := range bools {
		for _, b := range bools {
			and := 0.0
			if a == 1 && b == 1 {
				and = 1
			}
			or := 0.0
			if a == 1 || b == 1 {
				or = 1
			}
			if got := Min.Apply([]float64{a, b}); got != and {
				t.Errorf("Min(%v,%v) = %v, want %v", a, b, got, and)
			}
			if got := Max.Apply([]float64{a, b}); got != or {
				t.Errorf("Max(%v,%v) = %v, want %v", a, b, got, or)
			}
		}
	}
	// The arithmetic mean does NOT conserve propositional semantics
	// (Section 3: mean(0,1) = 1/2, not 0).
	if got := ArithmeticMean.Apply([]float64{0, 1}); got != 0.5 {
		t.Errorf("mean(0,1) = %v, want 0.5", got)
	}
}

func TestNegate(t *testing.T) {
	if Negate(0) != 1 || Negate(1) != 0 || Negate(0.25) != 0.75 {
		t.Error("Negate is not 1-x")
	}
}

func TestTNormAxioms(t *testing.T) {
	for _, tn := range TNorms() {
		tn := tn
		t.Run(tn.Name(), func(t *testing.T) {
			if err := CheckTNormAxioms(tn, 12); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCoNormAxioms(t *testing.T) {
	for _, sn := range CoNorms() {
		sn := sn
		t.Run(sn.Name(), func(t *testing.T) {
			if err := CheckCoNormAxioms(sn, 12); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDualityRoundTrip(t *testing.T) {
	// The dual of the dual is the original (De Morgan through 1-x).
	for _, tn := range TNorms() {
		dd := DualTNorm(DualCoNorm(tn))
		for _, x := range grid(10) {
			for _, y := range grid(10) {
				if math.Abs(dd.Combine(x, y)-tn.Combine(x, y)) > 1e-9 {
					t.Errorf("%s: double dual differs at (%v,%v)", tn.Name(), x, y)
				}
			}
		}
	}
}

func TestCataloguedDualsMatchDerivedDuals(t *testing.T) {
	pairs := []struct {
		tn TNorm
		sn CoNorm
	}{
		{MinNorm, MaxNorm},
		{DrasticProduct, DrasticSum},
		{BoundedDifference, BoundedSum},
		{EinsteinProduct, EinsteinSum},
		{AlgebraicProduct, AlgebraicSum},
		{HamacherProduct, HamacherSum},
	}
	for _, p := range pairs {
		derived := DualCoNorm(p.tn)
		for _, x := range grid(10) {
			for _, y := range grid(10) {
				if math.Abs(derived.Combine(x, y)-p.sn.Combine(x, y)) > 1e-9 {
					t.Errorf("dual of %s != %s at (%v,%v): %v vs %v",
						p.tn.Name(), p.sn.Name(), x, y, derived.Combine(x, y), p.sn.Combine(x, y))
				}
			}
		}
	}
}

func TestTNormOrdering(t *testing.T) {
	// Every t-norm lies between drastic product and min (the envelope from
	// which strictness follows).
	for _, tn := range TNorms() {
		if err := VerifyEnvelope(tn, 20); err != nil {
			t.Error(err)
		}
	}
}

func TestMetadataMatchesBehaviourMonotone(t *testing.T) {
	funcs := []Func{Min, Max, ArithmeticMean, GeometricMean, Median, Gymnastics,
		AlgebraicProduct, EinsteinProduct, HamacherProduct, BoundedDifference, DrasticProduct}
	for _, f := range funcs {
		if !f.Monotone() {
			t.Errorf("%s claims non-monotone", f.Name())
			continue
		}
		for _, arity := range []int{2, 3, 5} {
			if err := VerifyMonotone(f, arity, 500, 42); err != nil {
				t.Errorf("arity %d: %v", arity, err)
			}
		}
	}
}

func TestMetadataMatchesBehaviourStrict(t *testing.T) {
	strict := []Func{Min, ArithmeticMean, GeometricMean,
		AlgebraicProduct, EinsteinProduct, HamacherProduct, BoundedDifference, DrasticProduct}
	for _, f := range strict {
		if !f.Strict() {
			t.Errorf("%s claims non-strict", f.Name())
			continue
		}
		for _, arity := range []int{2, 3, 5} {
			if err := VerifyStrict(f, arity, 500, 43); err != nil {
				t.Errorf("arity %d: %v", arity, err)
			}
		}
	}
	// Non-strict examples: max = 1 with a non-1 argument; median likewise.
	if VerifyStrict(Max, 2, 100, 44) == nil {
		// VerifyStrict degrades a random subset; it must find the case
		// where only one coordinate is degraded.
		t.Error("VerifyStrict failed to refute strictness of max")
	}
	if VerifyStrict(Median, 3, 200, 45) == nil {
		t.Error("VerifyStrict failed to refute strictness of median")
	}
}

func TestMedianValues(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{0.1, 0.5, 0.9}, 0.5},
		{[]float64{0.9, 0.1, 0.5}, 0.5},
		{[]float64{0.2, 0.2, 0.8}, 0.2},
		{[]float64{0.3}, 0.3},
		{[]float64{0.3, 0.7}, 0.3}, // lower median for even arity
		{[]float64{0.1, 0.2, 0.6, 0.8, 0.9}, 0.6},
		{nil, 0},
	}
	for _, c := range cases {
		if got := Median.Apply(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// The identity behind Remark 6.1: median(a,b,c) =
// max(min(a,b), min(a,c), min(b,c)).
func TestMedianMinMaxIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		med := Median.Apply([]float64{a, b, c})
		viaMinMax := Max.Apply([]float64{
			Min.Apply([]float64{a, b}),
			Min.Apply([]float64{a, c}),
			Min.Apply([]float64{b, c}),
		})
		return math.Abs(med-viaMinMax) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Generalized identity: the j-th largest equals the max over j-subsets of
// the min over the subset.
func TestOrderStatisticSubsetIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 22))
		m := 2 + rng.IntN(4) // 2..5
		j := 1 + rng.IntN(m)
		gs := make([]float64, m)
		for i := range gs {
			gs[i] = rng.Float64()
		}
		direct := OrderStatistic(j).Apply(gs)
		best := 0.0
		for _, subset := range Subsets(m, j) {
			min := 1.0
			for _, idx := range subset {
				if gs[idx] < min {
					min = gs[idx]
				}
			}
			if min > best {
				best = min
			}
		}
		return math.Abs(direct-best) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOrderStatisticEdges(t *testing.T) {
	if got := OrderStatistic(1).Apply([]float64{0.2, 0.8}); got != 0.8 {
		t.Errorf("1st largest = %v, want 0.8", got)
	}
	if got := OrderStatistic(2).Apply([]float64{0.2, 0.8}); got != 0.2 {
		t.Errorf("2nd largest = %v, want 0.2", got)
	}
	if got := OrderStatistic(3).Apply([]float64{0.2, 0.8}); got != 0 {
		t.Errorf("overflow order statistic = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("OrderStatistic(0) should panic")
		}
	}()
	OrderStatistic(0)
}

func TestGymnastics(t *testing.T) {
	// Drop 0.1 and 0.9, average the rest.
	if got := Gymnastics.Apply([]float64{0.9, 0.5, 0.3, 0.1}); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Gymnastics = %v, want 0.4", got)
	}
	// Three judges: gymnastics = median.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		gs := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		return math.Abs(Gymnastics.Apply(gs)-Median.Apply(gs)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// All-equal grades must not divide by zero.
	if got := Gymnastics.Apply([]float64{0.5, 0.5, 0.5}); got != 0.5 {
		t.Errorf("Gymnastics(equal) = %v, want 0.5", got)
	}
	if got := Gymnastics.Apply([]float64{0.5, 0.5}); got != 0 {
		t.Errorf("Gymnastics(arity 2) = %v, want 0", got)
	}
}

func TestSubsets(t *testing.T) {
	got := Subsets(4, 2)
	if len(got) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(got))
	}
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("Subsets[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if Subsets(3, 0) == nil || len(Subsets(3, 0)) != 1 {
		t.Error("Subsets(3,0) should be [[]]")
	}
	if Subsets(3, 4) != nil {
		t.Error("Subsets(3,4) should be nil")
	}
	if len(MedianDecomposition(3)) != 3 {
		t.Errorf("MedianDecomposition(3) size = %d, want 3", len(MedianDecomposition(3)))
	}
}

func TestConstant(t *testing.T) {
	c := Constant(0.4)
	if c.Apply([]float64{0, 1}) != 0.4 || c.Apply(nil) != 0.4 {
		t.Error("Constant does not ignore arguments")
	}
	if !c.Monotone() || c.Strict() {
		t.Error("Constant metadata wrong")
	}
}

func TestIteratedTNormAgainstDirectMin(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 24))
		m := 1 + rng.IntN(6)
		gs := make([]float64, m)
		for i := range gs {
			gs[i] = rng.Float64()
		}
		return math.Abs(MinNorm.Apply(gs)-Min.Apply(gs)) < 1e-12 &&
			math.Abs(MaxNorm.Apply(gs)-Max.Apply(gs)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean.Apply([]float64{0.25, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("geomean(0.25, 1) = %v, want 0.5", got)
	}
	if got := GeometricMean.Apply([]float64{0, 0.5}); got != 0 {
		t.Errorf("geomean with a 0 = %v, want 0", got)
	}
	if got := GeometricMean.Apply(nil); got != 1 {
		t.Errorf("empty geomean = %v, want 1", got)
	}
}
