package agg

import "math"

// Func is an aggregation function: it maps a vector of grades in [0,1] to
// a single grade in [0,1]. Implementations accept any arity unless
// documented otherwise (the order-statistic family requires enough
// arguments).
//
// Monotone and Strict report structural properties the algorithms depend
// on; they are promises about the mathematical definition, verified
// empirically by this package's test suite. Algorithm A₀ requires
// Monotone for correctness; the Θ lower bound additionally requires
// Strict.
type Func interface {
	// Name identifies the function in reports and experiment tables.
	Name() string
	// Apply evaluates the function. Implementations must not retain or
	// mutate the slice. Behaviour outside [0,1] inputs is unspecified.
	Apply(grades []float64) float64
	// Monotone reports whether the function is monotone in every argument.
	Monotone() bool
	// Strict reports whether the function equals 1 exactly when every
	// argument equals 1.
	Strict() bool
}

// Negate is the standard fuzzy negation rule: μ¬A(x) = 1 − μA(x).
func Negate(g float64) float64 { return 1 - g }

// funcImpl is the common carrier for the package's built-in functions.
type funcImpl struct {
	name     string
	apply    func([]float64) float64
	monotone bool
	strict   bool
}

func (f funcImpl) Name() string                   { return f.name }
func (f funcImpl) Apply(grades []float64) float64 { return f.apply(grades) }
func (f funcImpl) Monotone() bool                 { return f.monotone }
func (f funcImpl) Strict() bool                   { return f.strict }

// Min is the standard fuzzy conjunction rule: the minimum of the grades.
// By Theorem 3.1 it is the unique monotone conjunction rule preserving
// logical equivalence. Applying it to no grades yields 1, the identity of
// conjunction.
var Min Func = funcImpl{
	name: "min",
	apply: func(gs []float64) float64 {
		min := 1.0
		for _, g := range gs {
			if g < min {
				min = g
			}
		}
		return min
	},
	monotone: true,
	strict:   true,
}

// Max is the standard fuzzy disjunction rule: the maximum of the grades.
// It is monotone but not strict (max(1, 0) = 1), which is why the lower
// bound fails for it and algorithm B₀ beats Θ(N^((m−1)/m)k^(1/m))
// (Remark 6.1). Applying it to no grades yields 0, the identity of
// disjunction.
var Max Func = funcImpl{
	name: "max",
	apply: func(gs []float64) float64 {
		max := 0.0
		for _, g := range gs {
			if g > max {
				max = g
			}
		}
		return max
	},
	monotone: true,
	strict:   false,
}

// Constant returns the aggregation function that ignores its arguments and
// always yields c. It is monotone and (unless c = 1 at arity 0, which we
// do not model) not strict: the degenerate example of Section 4 for which
// any k objects are a correct answer.
func Constant(c float64) Func {
	return funcImpl{
		name:     "constant",
		apply:    func([]float64) float64 { return c },
		monotone: true,
		strict:   false,
	}
}

// ArithmeticMean averages the grades. Thole, Zimmermann and Zysno found it
// to perform well empirically; it is monotone and strict but not a t-norm
// (it does not conserve propositional semantics: mean(0,1) = ½). The
// paper's upper and lower bounds therefore still apply to it. Applying it
// to no grades yields 1 by convention (empty conjunction).
var ArithmeticMean Func = funcImpl{
	name: "arithmetic-mean",
	apply: func(gs []float64) float64 {
		if len(gs) == 0 {
			return 1
		}
		sum := 0.0
		for _, g := range gs {
			sum += g
		}
		return sum / float64(len(gs))
	},
	monotone: true,
	strict:   true,
}

// GeometricMean is the m-th root of the product of the grades: monotone
// and strict, and like the arithmetic mean not a t-norm. Applying it to no
// grades yields 1.
var GeometricMean Func = funcImpl{
	name: "geometric-mean",
	apply: func(gs []float64) float64 {
		if len(gs) == 0 {
			return 1
		}
		prod := 1.0
		for _, g := range gs {
			prod *= g
		}
		return math.Pow(prod, 1/float64(len(gs)))
	},
	monotone: true,
	strict:   true,
}
