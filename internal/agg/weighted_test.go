package agg

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustWeighted(t *testing.T, base Func, ws []float64) *Weighted {
	t.Helper()
	w, err := NewWeighted(base, ws)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWeightedRejectsBadWeights(t *testing.T) {
	if _, err := NewWeighted(Min, nil); !errors.Is(err, ErrBadWeights) {
		t.Errorf("empty weights: err = %v", err)
	}
	if _, err := NewWeighted(Min, []float64{0.5, -0.1, 0.6}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("negative weight: err = %v", err)
	}
	if _, err := NewWeighted(Min, []float64{0.5, 0.2}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("sum != 1: err = %v", err)
	}
}

// FW97 requirement: with equal weights, the weighted function reduces to
// the unweighted one.
func TestWeightedEqualWeightsReduceToBase(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		m := 2 + rng.IntN(4)
		ws := make([]float64, m)
		for i := range ws {
			ws[i] = 1 / float64(m)
		}
		w, err := NewWeighted(Min, ws)
		if err != nil {
			return false
		}
		gs := make([]float64, m)
		for i := range gs {
			gs[i] = rng.Float64()
		}
		return math.Abs(w.Apply(gs)-Min.Apply(gs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FW97 requirement: a zero-weight argument is ignored.
func TestWeightedZeroWeightIgnored(t *testing.T) {
	w := mustWeighted(t, Min, []float64{0.5, 0.5, 0})
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 32))
		a, b := rng.Float64(), rng.Float64()
		noise := rng.Float64()
		want := Min.Apply([]float64{a, b})
		return math.Abs(w.Apply([]float64{a, b, noise})-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// A weight of 1 on one argument projects onto it.
func TestWeightedFullWeightProjects(t *testing.T) {
	w := mustWeighted(t, Min, []float64{0, 1})
	if got := w.Apply([]float64{0.3, 0.8}); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("projection = %v, want 0.8", got)
	}
}

// Worked example from FW97 with min: weights (0.6, 0.4), grades (x1, x2):
// f = (0.6-0.4)*x1 + 2*0.4*min(x1,x2) = 0.2*x1 + 0.8*min(x1,x2).
func TestWeightedWorkedExample(t *testing.T) {
	w := mustWeighted(t, Min, []float64{0.6, 0.4})
	x1, x2 := 0.9, 0.5
	want := 0.2*x1 + 0.8*math.Min(x1, x2)
	if got := w.Apply([]float64{x1, x2}); math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted = %v, want %v", got, want)
	}
	// Weight order must not matter to the formula: swapping weights and
	// arguments together is invariant.
	w2 := mustWeighted(t, Min, []float64{0.4, 0.6})
	if got := w2.Apply([]float64{x2, x1}); math.Abs(got-want) > 1e-12 {
		t.Errorf("swapped weighted = %v, want %v", got, want)
	}
}

func TestWeightedMonotoneProperty(t *testing.T) {
	w := mustWeighted(t, Min, []float64{0.5, 0.3, 0.2})
	if !w.Monotone() {
		t.Fatal("weighted min should be monotone")
	}
	if err := VerifyMonotone(w, 3, 2000, 77); err != nil {
		t.Error(err)
	}
}

func TestWeightedStrictness(t *testing.T) {
	strictW := mustWeighted(t, Min, []float64{0.5, 0.3, 0.2})
	if !strictW.Strict() {
		t.Error("all-positive weights on strict base should be strict")
	}
	if err := VerifyStrict(strictW, 3, 500, 78); err != nil {
		t.Error(err)
	}
	zeroW := mustWeighted(t, Min, []float64{0.5, 0.5, 0})
	if zeroW.Strict() {
		t.Error("zero weight should lose strictness")
	}
	nonStrictBase := mustWeighted(t, Max, []float64{0.5, 0.5})
	if nonStrictBase.Strict() {
		t.Error("weighted max should not be strict")
	}
}

func TestWeightedGradesInRangeProperty(t *testing.T) {
	w := mustWeighted(t, AlgebraicProduct, []float64{0.7, 0.2, 0.1})
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 33))
		gs := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		v := w.Apply(gs)
		return v >= -1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedArityMismatchPanics(t *testing.T) {
	w := mustWeighted(t, Min, []float64{0.5, 0.5})
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	w.Apply([]float64{0.1})
}

func TestWeightsAccessor(t *testing.T) {
	in := []float64{0.2, 0.5, 0.3}
	w := mustWeighted(t, Min, in)
	got := w.Weights()
	for i := range in {
		if math.Abs(got[i]-in[i]) > 1e-12 {
			t.Errorf("Weights()[%d] = %v, want %v", i, got[i], in[i])
		}
	}
	if w.Arity() != 3 {
		t.Errorf("Arity = %d, want 3", w.Arity())
	}
	if w.Name() != "weighted-min" {
		t.Errorf("Name = %q", w.Name())
	}
}
