package agg

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustOWA(t *testing.T, ws []float64) *OWA {
	t.Helper()
	o, err := NewOWA(ws)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOWAValidation(t *testing.T) {
	if _, err := NewOWA(nil); !errors.Is(err, ErrBadWeights) {
		t.Error("empty weights accepted")
	}
	if _, err := NewOWA([]float64{0.5, -0.1, 0.6}); !errors.Is(err, ErrBadWeights) {
		t.Error("negative weight accepted")
	}
	if _, err := NewOWA([]float64{0.5, 0.4}); !errors.Is(err, ErrBadWeights) {
		t.Error("bad sum accepted")
	}
}

// OWA specializes to max, min, mean, median, and gymnastics.
func TestOWASpecializations(t *testing.T) {
	maxO := mustOWA(t, []float64{1, 0, 0})
	minO := mustOWA(t, []float64{0, 0, 1})
	meanO := mustOWA(t, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	medO := mustOWA(t, []float64{0, 1, 0})
	gymO := mustOWA(t, []float64{0, 0.5, 0.5, 0}) // 4 judges: drop best & worst
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 91))
		gs := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if math.Abs(maxO.Apply(gs)-Max.Apply(gs)) > 1e-12 {
			return false
		}
		if math.Abs(minO.Apply(gs)-Min.Apply(gs)) > 1e-12 {
			return false
		}
		if math.Abs(meanO.Apply(gs)-ArithmeticMean.Apply(gs)) > 1e-12 {
			return false
		}
		if math.Abs(medO.Apply(gs)-Median.Apply(gs)) > 1e-12 {
			return false
		}
		gs4 := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if math.Abs(gymO.Apply(gs4)-Gymnastics.Apply(gs4)) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOWAStrictness(t *testing.T) {
	if !mustOWA(t, []float64{0, 0, 1}).Strict() {
		t.Error("min-OWA should be strict")
	}
	if !mustOWA(t, []float64{0.2, 0.3, 0.5}).Strict() {
		t.Error("positive-tail OWA should be strict")
	}
	if mustOWA(t, []float64{0.5, 0.5, 0}).Strict() {
		t.Error("zero-tail OWA should not be strict")
	}
	// Verify the metadata against behaviour.
	strict := mustOWA(t, []float64{0.2, 0.3, 0.5})
	if err := VerifyStrict(strict, 3, 300, 92); err != nil {
		t.Error(err)
	}
	if err := VerifyMonotone(strict, 3, 500, 93); err != nil {
		t.Error(err)
	}
	loose := mustOWA(t, []float64{0.5, 0.5, 0})
	if VerifyStrict(loose, 3, 300, 94) == nil {
		t.Error("VerifyStrict failed to refute a zero-tail OWA")
	}
}

func TestOWAOrness(t *testing.T) {
	cases := []struct {
		ws   []float64
		want float64
	}{
		{[]float64{1, 0, 0}, 1},                     // max
		{[]float64{0, 0, 1}, 0},                     // min
		{[]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 0.5}, // mean
		{[]float64{1}, 0.5},                         // singleton
	}
	for _, c := range cases {
		if got := mustOWA(t, c.ws).Orness(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Orness(%v) = %v, want %v", c.ws, got, c.want)
		}
	}
}

func TestOWAArityPanics(t *testing.T) {
	o := mustOWA(t, []float64{0.5, 0.5})
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	o.Apply([]float64{1})
}

func TestOWAMetadata(t *testing.T) {
	o := mustOWA(t, []float64{0.5, 0.5})
	if o.Name() != "owa-2" || o.Arity() != 2 || !o.Monotone() {
		t.Errorf("metadata: name=%s arity=%d monotone=%v", o.Name(), o.Arity(), o.Monotone())
	}
}
