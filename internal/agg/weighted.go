package agg

import (
	"errors"
	"fmt"
	"sort"
)

// Weighted implements the Fagin–Wimmers formula [FW97] for incorporating
// user-supplied importance weights into an unweighted aggregation function
// (for example, "color matters twice as much as shape"). Given weights
// θ₁ ≥ θ₂ ≥ … ≥ θₘ ≥ 0 with Σθᵢ = 1 (arguments are sorted by weight
// internally) and a base function f, the weighted value is
//
//	f_θ(x₁,…,xₘ) = Σᵢ i·(θᵢ − θᵢ₊₁)·f(x₁,…,xᵢ),   θₘ₊₁ = 0,
//
// where the xᵢ are listed in decreasing-weight order. The formula is the
// unique one agreeing with f on equal weights, ignoring zero-weight
// arguments, and varying linearly in θ. Weighted conjunctions built this
// way are monotone whenever f is, so algorithm A₀ applies to them
// (Section 4).
type Weighted struct {
	base    Func
	weights []float64 // sorted descending
	order   []int     // original index of each sorted weight
}

// ErrBadWeights reports weights that are negative or do not sum to 1.
var ErrBadWeights = errors.New("agg: weights must be nonnegative and sum to 1")

// NewWeighted builds the weighted form of base under weights. The weights
// must be nonnegative and sum to 1 (within a small tolerance, after which
// they are renormalized exactly). Apply must later be called with exactly
// len(weights) grades, in the same positions as the weights.
func NewWeighted(base Func, weights []float64) (*Weighted, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: no weights", ErrBadWeights)
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("%w: negative weight %v", ErrBadWeights, w)
		}
		sum += w
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return nil, fmt.Errorf("%w: sum = %v", ErrBadWeights, sum)
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	sorted := make([]float64, len(weights))
	for i, idx := range order {
		sorted[i] = weights[idx] / sum
	}
	return &Weighted{base: base, weights: sorted, order: order}, nil
}

// Name implements Func.
func (w *Weighted) Name() string { return "weighted-" + w.base.Name() }

// Arity returns the number of weights (and required grades).
func (w *Weighted) Arity() int { return len(w.weights) }

// Apply implements Func. It panics if the number of grades differs from
// the number of weights.
func (w *Weighted) Apply(gs []float64) float64 {
	if len(gs) != len(w.weights) {
		panic(fmt.Sprintf("agg: Weighted.Apply: %d grades for %d weights", len(gs), len(w.weights)))
	}
	// Reorder grades into decreasing-weight position.
	ordered := make([]float64, len(gs))
	for i, idx := range w.order {
		ordered[i] = gs[idx]
	}
	total := 0.0
	for i := range ordered {
		next := 0.0
		if i+1 < len(w.weights) {
			next = w.weights[i+1]
		}
		coeff := float64(i+1) * (w.weights[i] - next)
		if coeff == 0 {
			continue
		}
		total += coeff * w.base.Apply(ordered[:i+1])
	}
	return total
}

// Monotone implements Func: the weighted form is a nonnegative linear
// combination of monotone functions of prefixes, so it is monotone iff the
// base is.
func (w *Weighted) Monotone() bool { return w.base.Monotone() }

// Strict implements Func: with every weight positive, the last term
// involves all arguments and the combination equals 1 only if every prefix
// value is 1; with some weight zero, arguments can be ignored and
// strictness is lost.
func (w *Weighted) Strict() bool {
	if !w.base.Strict() {
		return false
	}
	for _, t := range w.weights {
		if t == 0 {
			return false
		}
	}
	return true
}

// Weights returns the weights in original argument positions.
func (w *Weighted) Weights() []float64 {
	out := make([]float64, len(w.weights))
	for i, idx := range w.order {
		out[idx] = w.weights[i]
	}
	return out
}
