package scoredb

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"fuzzydb/internal/gradedset"
)

// GradeLaw is a distribution over grades: the marginal law of a list's
// grade values. The ranking (which object gets which grade) is chosen
// separately, so a law only shapes the grade profile of a list.
type GradeLaw interface {
	// Name identifies the law in experiment tables.
	Name() string
	// Sample draws n independent grades.
	Sample(rng *rand.Rand, n int) []float64
}

// Uniform is the iid Uniform[0,1] law: the paper's default for "fully
// fuzzy" atomic queries, and the distribution assumption of Section 9's
// Ullman/Landau analysis.
type Uniform struct{}

// Name implements GradeLaw.
func (Uniform) Name() string { return "uniform" }

// Sample implements GradeLaw.
func (Uniform) Sample(rng *rand.Rand, n int) []float64 {
	gs := make([]float64, n)
	for i := range gs {
		gs[i] = rng.Float64()
	}
	return gs
}

// BoundedAbove is iid Uniform[0,Max]: grades bounded away from 1, the
// assumption under which Ullman's algorithm stops in expected constant
// time (Section 9 uses Max = 0.9).
type BoundedAbove struct {
	Max float64
}

// Name implements GradeLaw.
func (l BoundedAbove) Name() string { return fmt.Sprintf("uniform[0,%g]", l.Max) }

// Sample implements GradeLaw.
func (l BoundedAbove) Sample(rng *rand.Rand, n int) []float64 {
	gs := make([]float64, n)
	for i := range gs {
		gs[i] = rng.Float64() * l.Max
	}
	return gs
}

// Binary is the traditional-database law: grade 1 with probability P
// (the predicate holds) and 0 otherwise, as in Artist="Beatles".
type Binary struct {
	P float64
}

// Name implements GradeLaw.
func (l Binary) Name() string { return fmt.Sprintf("binary(p=%g)", l.P) }

// Sample implements GradeLaw.
func (l Binary) Sample(rng *rand.Rand, n int) []float64 {
	gs := make([]float64, n)
	for i := range gs {
		if rng.Float64() < l.P {
			gs[i] = 1
		}
	}
	return gs
}

// Discrete draws uniformly from Levels evenly spaced grades
// {0, 1/(L−1), …, 1}, producing heavy ties — the regime where skeleton
// choice matters.
type Discrete struct {
	Levels int
}

// Name implements GradeLaw.
func (l Discrete) Name() string { return fmt.Sprintf("discrete(%d)", l.Levels) }

// Sample implements GradeLaw.
func (l Discrete) Sample(rng *rand.Rand, n int) []float64 {
	gs := make([]float64, n)
	den := float64(l.Levels - 1)
	for i := range gs {
		gs[i] = float64(rng.IntN(l.Levels)) / den
	}
	return gs
}

// LinearRank assigns the strictly decreasing, tie-free profile
// (n−r)/(n+1) to ranks r = 0,…,n−1. It is deterministic given n, so a
// list's grade depends only on rank: the "fully fuzzy, no ties" shape
// Section 7 requires.
type LinearRank struct{}

// Name implements GradeLaw.
func (LinearRank) Name() string { return "linear-rank" }

// Sample implements GradeLaw. The returned grades are already sorted
// descending; generators sort anyway, which is a no-op here.
func (LinearRank) Sample(_ *rand.Rand, n int) []float64 {
	gs := make([]float64, n)
	for i := range gs {
		gs[i] = float64(n-i) / float64(n+1)
	}
	return gs
}

// Generator draws scoring databases. The zero value is not useful: set N,
// M, and Law. With Correlation = 0 every list's order is an independent
// uniform permutation — exactly the independence model of Section 5.
type Generator struct {
	// N is the number of objects; M the number of lists.
	N, M int
	// Law is the marginal grade distribution of every list.
	Law GradeLaw
	// Seed makes generation deterministic.
	Seed uint64
	// Correlation in [−1, 1] couples the lists' rankings through a latent
	// uniform score per object. 0 is independence; +1 makes all lists rank
	// identically; −1 makes odd-indexed lists rank in exactly the reverse
	// order of even-indexed ones (for m = 2, perfectly anti-correlated —
	// the regime of Section 7).
	Correlation float64
}

// Generate draws a database.
func (g Generator) Generate() (*Database, error) {
	if g.N <= 0 || g.M <= 0 {
		return nil, fmt.Errorf("%w: N=%d M=%d", ErrShape, g.N, g.M)
	}
	if g.Correlation < -1 || g.Correlation > 1 {
		return nil, fmt.Errorf("%w: correlation %v outside [-1,1]", ErrShape, g.Correlation)
	}
	if g.Law == nil {
		g.Law = Uniform{}
	}
	rng := rand.New(rand.NewPCG(g.Seed, 0xdb))

	// Latent per-object score shared by all lists (only read when the
	// correlation is nonzero).
	latent := make([]float64, g.N)
	for i := range latent {
		latent[i] = rng.Float64()
	}

	rho := g.Correlation
	mag := rho
	if mag < 0 {
		mag = -mag
	}

	lists := make([]*gradedset.List, g.M)
	for i := 0; i < g.M; i++ {
		// Score each object, rank descending by score, then lay the law's
		// sorted grade profile over the ranking.
		score := make([]float64, g.N)
		for obj := 0; obj < g.N; obj++ {
			z := latent[obj]
			if rho < 0 && i%2 == 1 {
				z = 1 - z
			}
			score[obj] = mag*z + (1-mag)*rng.Float64()
		}
		perm := make([]int, g.N)
		for obj := range perm {
			perm[obj] = obj
		}
		sort.SliceStable(perm, func(a, b int) bool { return score[perm[a]] > score[perm[b]] })

		grades := g.Law.Sample(rng, g.N)
		sort.Sort(sort.Reverse(sort.Float64Slice(grades)))

		entries := make([]gradedset.Entry, g.N)
		for r := 0; r < g.N; r++ {
			entries[r] = gradedset.Entry{Object: perm[r], Grade: grades[r]}
		}
		l, err := gradedset.NewListPresorted(entries)
		if err != nil {
			return nil, fmt.Errorf("list %d: %w", i, err)
		}
		lists[i] = l
	}
	return New(lists)
}

// MustGenerate is Generate for parameters known to be valid.
func (g Generator) MustGenerate() *Database {
	db, err := g.Generate()
	if err != nil {
		panic(err)
	}
	return db
}

// HardQueryPair builds the Section 7 workload for Q ∧ ¬Q: list 0 is a
// fully fuzzy query Q with distinct grades (no ties) in random object
// order; list 1 is its standard negation, whose sorted order is exactly
// the reverse permutation. Under min, the top answer is the object x
// maximizing min(μQ(x), 1−μQ(x)), i.e. the one with grade closest to ½.
func HardQueryPair(n int, seed uint64) (*Database, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: N=%d", ErrShape, n)
	}
	rng := rand.New(rand.NewPCG(seed, 0x7a))
	perm := rng.Perm(n)
	entries := make([]gradedset.Entry, n)
	for r := 0; r < n; r++ {
		// Strictly decreasing, tie-free grades in (0,1).
		entries[r] = gradedset.Entry{Object: perm[r], Grade: float64(n-r) / float64(n+1)}
	}
	q, err := gradedset.NewListPresorted(entries)
	if err != nil {
		return nil, err
	}
	return New([]*gradedset.List{q, q.Reversed()})
}

// Duplicated builds m identical lists (perfect positive correlation):
// every list ranks objects the same way with the same grades.
func Duplicated(n, m int, law GradeLaw, seed uint64) (*Database, error) {
	base, err := Generator{N: n, M: 1, Law: law, Seed: seed}.Generate()
	if err != nil {
		return nil, err
	}
	lists := make([]*gradedset.List, m)
	for i := range lists {
		lists[i] = base.List(0)
	}
	return New(lists)
}

// FromMatrix builds a database from grades[i][obj] (list i, object obj),
// sorting each list canonically (descending grade, ascending object id on
// ties). Convenient for table-driven tests.
func FromMatrix(grades [][]float64) (*Database, error) {
	if len(grades) == 0 {
		return nil, fmt.Errorf("%w: empty matrix", ErrShape)
	}
	lists := make([]*gradedset.List, len(grades))
	for i, row := range grades {
		entries := make([]gradedset.Entry, len(row))
		for obj, g := range row {
			entries[obj] = gradedset.Entry{Object: obj, Grade: g}
		}
		l, err := gradedset.NewList(entries)
		if err != nil {
			return nil, fmt.Errorf("list %d: %w", i, err)
		}
		lists[i] = l
	}
	return New(lists)
}
