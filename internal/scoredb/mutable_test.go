package scoredb

import "testing"

func TestMutableDatabase(t *testing.T) {
	db := Generator{N: 16, M: 3, Law: Uniform{}, Seed: 5}.MustGenerate()
	mdb := NewMutable(db)
	if mdb.N() != 16 || mdb.M() != 3 {
		t.Fatalf("shape %dx%d", mdb.M(), mdb.N())
	}
	before := mdb.List(1)
	oldGrade, _ := before.Grade(7)
	g := 0.5
	if g == oldGrade {
		g = 0.25
	}
	if err := mdb.UpdateGrade(1, 7, g); err != nil {
		t.Fatal(err)
	}
	if mdb.Epoch(1) != 1 || mdb.Epoch(0) != 0 {
		t.Fatalf("epochs = [%d %d %d]", mdb.Epoch(0), mdb.Epoch(1), mdb.Epoch(2))
	}
	// Copy-on-write: the earlier snapshot still carries the old grade.
	if got, _ := before.Grade(7); got != oldGrade {
		t.Fatalf("snapshot mutated: grade = %g, want %g", got, oldGrade)
	}
	if got, _ := mdb.List(1).Grade(7); got != g {
		t.Fatalf("current grade = %g, want %g", got, g)
	}
	// No-op update: nothing moves.
	if err := mdb.UpdateGrade(1, 7, g); err != nil {
		t.Fatal(err)
	}
	if mdb.Epoch(1) != 1 {
		t.Fatal("no-op update bumped the epoch")
	}
	snap, err := mdb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mdb.UpdateGrade(5, 0, 0.1); err == nil {
		t.Fatal("out-of-range list accepted")
	}
	if err := mdb.UpdateGrade(0, 99, 0.1); err == nil {
		t.Fatal("unknown object accepted")
	}
}
