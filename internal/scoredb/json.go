package scoredb

import (
	"encoding/json"
	"fmt"
	"io"

	"fuzzydb/internal/gradedset"
)

// The JSON form preserves each list's sorted-access order (the skeleton),
// not just the grades, so a round trip reproduces tie behaviour exactly.

type jsonDatabase struct {
	N     int        `json:"n"`
	Lists []jsonList `json:"lists"`
}

type jsonList struct {
	// Objects and Grades are parallel, in sorted-access order.
	Objects []int     `json:"objects"`
	Grades  []float64 `json:"grades"`
}

// WriteJSON serializes the database.
func (d *Database) WriteJSON(w io.Writer) error {
	out := jsonDatabase{N: d.n, Lists: make([]jsonList, len(d.lists))}
	for i, l := range d.lists {
		jl := jsonList{
			Objects: make([]int, l.Len()),
			Grades:  make([]float64, l.Len()),
		}
		for r := 0; r < l.Len(); r++ {
			e := l.Entry(r)
			jl.Objects[r] = e.Object
			jl.Grades[r] = e.Grade
		}
		out.Lists[i] = jl
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserializes a database written by WriteJSON, re-validating
// every invariant (sortedness, grade range, object universe).
func ReadJSON(r io.Reader) (*Database, error) {
	var in jsonDatabase
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("scoredb: decode: %w", err)
	}
	lists := make([]*gradedset.List, len(in.Lists))
	for i, jl := range in.Lists {
		if len(jl.Objects) != len(jl.Grades) {
			return nil, fmt.Errorf("%w: list %d has %d objects but %d grades",
				ErrShape, i, len(jl.Objects), len(jl.Grades))
		}
		entries := make([]gradedset.Entry, len(jl.Objects))
		for r := range jl.Objects {
			entries[r] = gradedset.Entry{Object: jl.Objects[r], Grade: jl.Grades[r]}
		}
		l, err := gradedset.NewListPresorted(entries)
		if err != nil {
			return nil, fmt.Errorf("list %d: %w", i, err)
		}
		lists[i] = l
	}
	return New(lists)
}
