package scoredb

import (
	"errors"
	"fmt"

	"fuzzydb/internal/gradedset"
)

// Database is a scoring database: m graded lists over the objects 0,…,N−1.
// List i is the materialized result of atomic query Aᵢ, supporting both
// sorted access (by rank) and random access (by object).
type Database struct {
	n     int
	lists []*gradedset.List
}

// ErrShape reports structurally invalid inputs (no lists, ragged lists,
// or lists whose object sets are not exactly {0,…,N−1}).
var ErrShape = errors.New("scoredb: invalid database shape")

// New assembles a database from lists. Every list must grade exactly the
// objects 0,…,N−1 where N is the common length.
func New(lists []*gradedset.List) (*Database, error) {
	if len(lists) == 0 {
		return nil, fmt.Errorf("%w: no lists", ErrShape)
	}
	n := lists[0].Len()
	for i, l := range lists {
		if l.Len() != n {
			return nil, fmt.Errorf("%w: list %d has %d objects, want %d", ErrShape, i, l.Len(), n)
		}
		for obj := 0; obj < n; obj++ {
			if !l.Contains(obj) {
				return nil, fmt.Errorf("%w: list %d missing object %d", ErrShape, i, obj)
			}
		}
	}
	return &Database{n: n, lists: lists}, nil
}

// N returns the number of objects.
func (d *Database) N() int { return d.n }

// M returns the number of lists (atomic queries).
func (d *Database) M() int { return len(d.lists) }

// List returns the i-th graded list.
func (d *Database) List(i int) *gradedset.List { return d.lists[i] }

// Lists returns all lists. The slice must not be mutated.
func (d *Database) Lists() []*gradedset.List { return d.lists }

// Grades returns the grade of obj in every list, in list order.
func (d *Database) Grades(obj int) ([]float64, error) {
	gs := make([]float64, len(d.lists))
	for i, l := range d.lists {
		g, err := l.Grade(obj)
		if err != nil {
			return nil, fmt.Errorf("list %d: %w", i, err)
		}
		gs[i] = g
	}
	return gs, nil
}

// Validate re-checks all invariants of the constituent lists.
func (d *Database) Validate() error {
	for i, l := range d.lists {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("list %d: %w", i, err)
		}
	}
	_, err := New(d.lists)
	return err
}

// Skeleton extracts the skeleton the database's tie order realizes: for
// each list, the permutation of objects in sorted-access order.
func (d *Database) Skeleton() *Skeleton {
	perms := make([][]int, len(d.lists))
	for i, l := range d.lists {
		perm := make([]int, d.n)
		for r := 0; r < d.n; r++ {
			perm[r] = l.Entry(r).Object
		}
		perms[i] = perm
	}
	return &Skeleton{perms: perms, n: d.n}
}

// Skeleton is a function associating with each list a permutation of the
// objects 0,…,N−1: the order in which sorted access reveals them. A
// database is consistent with a skeleton iff each permutation sorts the
// corresponding graded set in descending order (ties may break either
// way, so several skeletons can be consistent with one database).
type Skeleton struct {
	perms [][]int
	n     int
}

// NewSkeleton validates that each perms[i] is a permutation of 0,…,N−1
// (with common N) and wraps them.
func NewSkeleton(perms [][]int) (*Skeleton, error) {
	if len(perms) == 0 {
		return nil, fmt.Errorf("%w: no permutations", ErrShape)
	}
	n := len(perms[0])
	for i, p := range perms {
		if len(p) != n {
			return nil, fmt.Errorf("%w: permutation %d has length %d, want %d", ErrShape, i, len(p), n)
		}
		seen := make([]bool, n)
		for _, obj := range p {
			if obj < 0 || obj >= n || seen[obj] {
				return nil, fmt.Errorf("%w: permutation %d is not a permutation", ErrShape, i)
			}
			seen[obj] = true
		}
	}
	return &Skeleton{perms: perms, n: n}, nil
}

// N returns the number of objects.
func (s *Skeleton) N() int { return s.n }

// M returns the number of permutations.
func (s *Skeleton) M() int { return len(s.perms) }

// Perm returns the i-th permutation. The slice must not be mutated.
func (s *Skeleton) Perm(i int) []int { return s.perms[i] }

// ConsistentWith reports whether database d is consistent with s: the
// same shape, and each permutation lists objects in non-increasing grade
// order of the corresponding list.
func (s *Skeleton) ConsistentWith(d *Database) error {
	if s.n != d.n || len(s.perms) != len(d.lists) {
		return fmt.Errorf("%w: skeleton %dx%d vs database %dx%d",
			ErrShape, len(s.perms), s.n, len(d.lists), d.n)
	}
	for i, perm := range s.perms {
		l := d.lists[i]
		prev := 2.0
		for r, obj := range perm {
			g, err := l.Grade(obj)
			if err != nil {
				return fmt.Errorf("permutation %d rank %d: %w", i, r, err)
			}
			if g > prev {
				return fmt.Errorf("scoredb: permutation %d not sorted at rank %d", i, r)
			}
			prev = g
		}
	}
	return nil
}
