// Package scoredb implements the formal framework of Section 5: scoring
// databases, skeletons, and the probabilistic workload model under which
// the paper's upper and lower bounds are stated.
//
// A scoring database over N objects (named 0,…,N−1) and m atomic queries
// associates with each query index i a graded set — intuitively, the
// result of applying atomic query Aᵢ to the original database. A skeleton
// associates with each i a permutation of the objects; a database is
// consistent with a skeleton if each permutation sorts the corresponding
// graded set in descending grade order. Skeletons make the cost of sorted
// access well defined in the presence of ties.
//
// The paper's independence assumption — "each of the m sorted lists
// contains the objects in random order, independent of the other lists" —
// corresponds to drawing each permutation uniformly. The generators in
// this package produce databases under that model and under the
// correlated, anti-correlated (Section 7's Q ∧ ¬Q), and bounded-grade
// (Section 9, Ullman's algorithm) variations the experiments need. All
// generators are deterministic given a seed.
package scoredb
