package scoredb

import (
	"fmt"
	"sync"

	"fuzzydb/internal/gradedset"
)

// Mutable is a scoring database whose grades can change after
// construction: the live-data twin of Database. Each UpdateGrade swaps
// in a copy-on-write updated list (gradedset.List.Updated) and bumps
// that list's epoch — a monotone per-source version counter — so
// consumers holding derived state (cached top-k answers, materialized
// snapshots) can detect exactly which source moved and revalidate
// instead of rebuilding. List returns the current immutable snapshot:
// evaluations in flight keep the list they started on.
type Mutable struct {
	mu     sync.RWMutex
	n      int
	lists  []*gradedset.List
	epochs []uint64
}

// NewMutable wraps a validated database for in-place grade updates. The
// source database is not retained; its lists become the initial
// snapshots (at epoch 0 each).
func NewMutable(db *Database) *Mutable {
	lists := make([]*gradedset.List, db.M())
	copy(lists, db.Lists())
	return &Mutable{n: db.N(), lists: lists, epochs: make([]uint64, len(lists))}
}

// N returns the number of objects.
func (d *Mutable) N() int { return d.n }

// M returns the number of lists.
func (d *Mutable) M() int {
	return len(d.lists)
}

// List returns the current immutable snapshot of the i-th list.
func (d *Mutable) List(i int) *gradedset.List {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lists[i]
}

// Epoch returns the i-th list's version: 0 before any update, bumped by
// each effective one.
func (d *Mutable) Epoch(i int) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epochs[i]
}

// UpdateGrade changes the grade of obj in the given list to g,
// copy-on-write: previously returned snapshots are untouched, the next
// List call sees the new data, and the list's epoch advances. A no-op
// update (the grade already is g) changes nothing, not even the epoch.
func (d *Mutable) UpdateGrade(list, obj int, g float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if list < 0 || list >= len(d.lists) {
		return fmt.Errorf("%w: no list %d", ErrShape, list)
	}
	l := d.lists[list]
	old, err := l.Grade(obj)
	if err != nil {
		return fmt.Errorf("list %d: %w", list, err)
	}
	if old == g {
		return nil
	}
	nl, err := l.Updated(obj, g)
	if err != nil {
		return fmt.Errorf("list %d: %w", list, err)
	}
	d.lists[list] = nl
	d.epochs[list]++
	return nil
}

// Snapshot returns the current state as an immutable Database sharing
// the current list snapshots.
func (d *Mutable) Snapshot() (*Database, error) {
	d.mu.RLock()
	lists := make([]*gradedset.List, len(d.lists))
	copy(lists, d.lists)
	d.mu.RUnlock()
	return New(lists)
}
