package scoredb

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fuzzydb/internal/gradedset"
)

func mustDB(t *testing.T, grades [][]float64) *Database {
	t.Helper()
	db, err := FromMatrix(grades)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFromMatrixShape(t *testing.T) {
	db := mustDB(t, [][]float64{
		{0.9, 0.1, 0.5},
		{0.2, 0.8, 0.4},
	})
	if db.N() != 3 || db.M() != 2 {
		t.Fatalf("N=%d M=%d, want 3, 2", db.N(), db.M())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	gs, err := db.Grades(1)
	if err != nil {
		t.Fatal(err)
	}
	if gs[0] != 0.1 || gs[1] != 0.8 {
		t.Errorf("Grades(1) = %v", gs)
	}
}

func TestFromMatrixErrors(t *testing.T) {
	if _, err := FromMatrix(nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty matrix: %v", err)
	}
	if _, err := FromMatrix([][]float64{{0.5}, {0.2, 0.3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := FromMatrix([][]float64{{1.5}}); err == nil {
		t.Error("bad grade accepted")
	}
}

func TestNewRejectsMissingObjects(t *testing.T) {
	l1, err := gradedset.NewList([]gradedset.Entry{{Object: 0, Grade: 0.5}, {Object: 2, Grade: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := gradedset.NewList([]gradedset.Entry{{Object: 0, Grade: 0.5}, {Object: 1, Grade: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]*gradedset.List{l1, l2}); !errors.Is(err, ErrShape) {
		t.Errorf("database with object gap accepted: %v", err)
	}
}

func TestSkeletonExtractionAndConsistency(t *testing.T) {
	db := mustDB(t, [][]float64{
		{0.9, 0.1, 0.5},
		{0.2, 0.8, 0.4},
	})
	sk := db.Skeleton()
	if sk.N() != 3 || sk.M() != 2 {
		t.Fatalf("skeleton shape %dx%d", sk.M(), sk.N())
	}
	wantPerm0 := []int{0, 2, 1}
	for r, obj := range wantPerm0 {
		if sk.Perm(0)[r] != obj {
			t.Errorf("Perm(0)[%d] = %d, want %d", r, sk.Perm(0)[r], obj)
		}
	}
	if err := sk.ConsistentWith(db); err != nil {
		t.Errorf("extracted skeleton inconsistent: %v", err)
	}
	// A wrong-order skeleton must be rejected.
	bad, err := NewSkeleton([][]int{{1, 0, 2}, {1, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.ConsistentWith(db); err == nil {
		t.Error("inconsistent skeleton accepted")
	}
}

func TestNewSkeletonValidation(t *testing.T) {
	if _, err := NewSkeleton(nil); !errors.Is(err, ErrShape) {
		t.Error("empty skeleton accepted")
	}
	if _, err := NewSkeleton([][]int{{0, 0}}); !errors.Is(err, ErrShape) {
		t.Error("duplicate entry accepted")
	}
	if _, err := NewSkeleton([][]int{{0, 3}}); !errors.Is(err, ErrShape) {
		t.Error("out-of-range entry accepted")
	}
	if _, err := NewSkeleton([][]int{{0, 1}, {0}}); !errors.Is(err, ErrShape) {
		t.Error("ragged skeleton accepted")
	}
}

func TestGeneratorIndependent(t *testing.T) {
	db, err := Generator{N: 100, M: 3, Law: Uniform{}, Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 100 || db.M() != 3 {
		t.Fatalf("shape %dx%d", db.M(), db.N())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := db.Skeleton().ConsistentWith(db); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g := Generator{N: 50, M: 2, Law: Uniform{}, Seed: 99}
	a := g.MustGenerate()
	b := g.MustGenerate()
	for i := 0; i < a.M(); i++ {
		for r := 0; r < a.N(); r++ {
			if a.List(i).Entry(r) != b.List(i).Entry(r) {
				t.Fatalf("same seed diverged at list %d rank %d", i, r)
			}
		}
	}
	c := Generator{N: 50, M: 2, Law: Uniform{}, Seed: 100}.MustGenerate()
	same := true
	for r := 0; r < a.N() && same; r++ {
		if a.List(0).Entry(r).Object != c.List(0).Entry(r).Object {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical permutation")
	}
}

func TestGeneratorRejectsBadParams(t *testing.T) {
	if _, err := (Generator{N: 0, M: 2}).Generate(); !errors.Is(err, ErrShape) {
		t.Error("N=0 accepted")
	}
	if _, err := (Generator{N: 2, M: 0}).Generate(); !errors.Is(err, ErrShape) {
		t.Error("M=0 accepted")
	}
	if _, err := (Generator{N: 2, M: 2, Correlation: 1.5}).Generate(); !errors.Is(err, ErrShape) {
		t.Error("correlation out of range accepted")
	}
}

func TestGeneratorFullCorrelationRanksIdentically(t *testing.T) {
	db := Generator{N: 200, M: 3, Law: LinearRank{}, Seed: 7, Correlation: 1}.MustGenerate()
	p0 := db.Skeleton().Perm(0)
	for i := 1; i < db.M(); i++ {
		pi := db.Skeleton().Perm(i)
		for r := range p0 {
			if p0[r] != pi[r] {
				t.Fatalf("correlation=1 but perms differ at list %d rank %d", i, r)
			}
		}
	}
}

func TestGeneratorAntiCorrelationReversesRanking(t *testing.T) {
	db := Generator{N: 200, M: 2, Law: LinearRank{}, Seed: 8, Correlation: -1}.MustGenerate()
	p0 := db.Skeleton().Perm(0)
	p1 := db.Skeleton().Perm(1)
	n := len(p0)
	for r := range p0 {
		if p0[r] != p1[n-1-r] {
			t.Fatalf("correlation=-1 but perm 1 is not the reverse of perm 0 at rank %d", r)
		}
	}
}

// Property: independent generation yields lists whose rank correlation is
// near zero, while correlation=0.9 yields strongly aligned ranks.
func TestGeneratorCorrelationShapesRanks(t *testing.T) {
	rankOf := func(db *Database, list int) []int {
		ranks := make([]int, db.N())
		for r := 0; r < db.N(); r++ {
			ranks[db.List(list).Entry(r).Object] = r
		}
		return ranks
	}
	spearman := func(a, b []int) float64 {
		n := float64(len(a))
		var d2 float64
		for i := range a {
			d := float64(a[i] - b[i])
			d2 += d * d
		}
		return 1 - 6*d2/(n*(n*n-1))
	}
	ind := Generator{N: 500, M: 2, Seed: 9}.MustGenerate()
	rho0 := spearman(rankOf(ind, 0), rankOf(ind, 1))
	if math.Abs(rho0) > 0.2 {
		t.Errorf("independent lists have spearman %v, want ~0", rho0)
	}
	cor := Generator{N: 500, M: 2, Seed: 9, Correlation: 0.9}.MustGenerate()
	rho9 := spearman(rankOf(cor, 0), rankOf(cor, 1))
	if rho9 < 0.6 {
		t.Errorf("correlated lists have spearman %v, want > 0.6", rho9)
	}
	anti := Generator{N: 500, M: 2, Seed: 9, Correlation: -0.9}.MustGenerate()
	rhoA := spearman(rankOf(anti, 0), rankOf(anti, 1))
	if rhoA > -0.6 {
		t.Errorf("anti-correlated lists have spearman %v, want < -0.6", rhoA)
	}
}

func TestGradeLaws(t *testing.T) {
	rngDB := Generator{N: 1000, M: 1, Law: Binary{P: 0.1}, Seed: 3}.MustGenerate()
	ones := 0
	for r := 0; r < rngDB.N(); r++ {
		g := rngDB.List(0).Entry(r).Grade
		if g != 0 && g != 1 {
			t.Fatalf("binary law produced grade %v", g)
		}
		if g == 1 {
			ones++
		}
	}
	if ones < 50 || ones > 200 {
		t.Errorf("binary(0.1) produced %d ones out of 1000", ones)
	}

	bdb := Generator{N: 500, M: 1, Law: BoundedAbove{Max: 0.9}, Seed: 4}.MustGenerate()
	if top := bdb.List(0).Entry(0).Grade; top > 0.9 {
		t.Errorf("bounded law exceeded max: %v", top)
	}

	ddb := Generator{N: 500, M: 1, Law: Discrete{Levels: 5}, Seed: 5}.MustGenerate()
	for r := 0; r < ddb.N(); r++ {
		g := ddb.List(0).Entry(r).Grade
		scaled := g * 4
		if math.Abs(scaled-math.Round(scaled)) > 1e-12 {
			t.Fatalf("discrete law produced off-grid grade %v", g)
		}
	}

	ldb := Generator{N: 10, M: 1, Law: LinearRank{}, Seed: 6}.MustGenerate()
	for r := 0; r < 9; r++ {
		if ldb.List(0).Entry(r).Grade <= ldb.List(0).Entry(r+1).Grade {
			t.Fatal("linear-rank grades not strictly decreasing")
		}
	}
}

func TestHardQueryPair(t *testing.T) {
	db, err := HardQueryPair(100, 11)
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 2 || db.N() != 100 {
		t.Fatalf("shape %dx%d", db.M(), db.N())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// μ¬Q = 1 − μQ for every object.
	for obj := 0; obj < db.N(); obj++ {
		gq, _ := db.List(0).Grade(obj)
		gn, _ := db.List(1).Grade(obj)
		if math.Abs(gq+gn-1) > 1e-12 {
			t.Fatalf("object %d: μQ+μ¬Q = %v", obj, gq+gn)
		}
	}
	// Sorted order of list 1 is the exact reverse of list 0.
	n := db.N()
	for r := 0; r < n; r++ {
		if db.List(0).Entry(r).Object != db.List(1).Entry(n-1-r).Object {
			t.Fatal("negated list is not the reversed permutation")
		}
	}
	if _, err := HardQueryPair(0, 1); !errors.Is(err, ErrShape) {
		t.Error("HardQueryPair(0) accepted")
	}
}

func TestDuplicated(t *testing.T) {
	db, err := Duplicated(50, 3, Uniform{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < db.M(); i++ {
		for r := 0; r < db.N(); r++ {
			if db.List(i).Entry(r) != db.List(0).Entry(r) {
				t.Fatal("duplicated lists differ")
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Generator{N: 40, M: 3, Law: Discrete{Levels: 4}, Seed: 13}.MustGenerate()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.M() != orig.M() {
		t.Fatalf("shape changed: %dx%d", got.M(), got.N())
	}
	for i := 0; i < orig.M(); i++ {
		for r := 0; r < orig.N(); r++ {
			if got.List(i).Entry(r) != orig.List(i).Entry(r) {
				t.Fatalf("entry changed at list %d rank %d", i, r)
			}
		}
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"n":2,"lists":[{"objects":[0,1],"grades":[0.5]}]}`,     // ragged
		`{"n":2,"lists":[{"objects":[0,1],"grades":[0.1,0.5]}]}`, // unsorted
		`{"n":2,"lists":[{"objects":[0,0],"grades":[0.5,0.5]}]}`, // duplicate
		`{"n":2,"lists":[{"objects":[0,1],"grades":[0.5,2.0]}]}`, // bad grade
	}
	for _, c := range cases {
		if _, err := ReadJSON(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("corrupt input accepted: %q", c)
		}
	}
}

// Property: generated databases are always consistent with their own
// skeletons and pass validation, across laws and correlations.
func TestGeneratorAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		laws := []GradeLaw{Uniform{}, Binary{P: 0.3}, Discrete{Levels: 3}, BoundedAbove{Max: 0.7}, LinearRank{}}
		law := laws[int(seed%uint64(len(laws)))]
		corr := float64(int(seed%21)-10) / 10 // -1.0 .. 1.0
		db, err := Generator{N: 30, M: 3, Law: law, Seed: seed, Correlation: corr}.Generate()
		if err != nil {
			return false
		}
		if db.Validate() != nil {
			return false
		}
		return db.Skeleton().ConsistentWith(db) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
