// Package cache is the epoch-versioned top-k result cache: a bounded,
// concurrency-safe map from normalized request keys to previously
// computed reports, with threshold-based invalidation that lets most
// grade updates leave most cached answers standing.
//
// # Why a correct top-k survives most writes
//
// A correct top-k answer R with k-th (smallest) grade g_k certifies,
// for a monotone aggregation function t, that every object outside R
// aggregates to at most g_k — that is the definition of a correct
// answer, and it is exactly the certificate the stop threshold
// τ = t(g̲₁,…,g̲ₘ) of algorithm A₀ establishes (g_k ≥ τ at the stop, so
// g_k is the sharper of the two sound tests). After a single grade
// update (list l, object o, old → new), the cached answer remains a
// correct answer to a fresh evaluation unless the update could move
// some object across that certificate line:
//
//   - o ∈ R: the member's aggregate may have changed, so its cached
//     grade — and possibly the ordering — is stale. Evict. (The
//     journal never reports no-op updates, so every member update is a
//     real move.)
//   - o ∉ R and new ≤ old: by monotonicity o's aggregate did not
//     increase, so it stays at or below g_k; no member grade moved; the
//     cached results are bit-identical to a fresh recompute. Survive.
//   - o ∉ R and new > old: o's new aggregate is at most
//     t(b₁,…,b_{l-1}, new, b_{l+1},…,b_m), where b_j is an upper bound
//     on o's grade in list j — 1 when unknown, or the exact grade a
//     previously replayed update revealed (the entry tracks those per
//     object). If that bound is strictly below g_k, o still cannot
//     displace any member: survive. Ties evict conservatively, keeping
//     served answers bit-identical to recompute whenever the k-th
//     grade is untied.
//
// The check is per cached entry and touches no sources: an update only
// evicts the entries it could actually disturb, instead of the
// evict-all a version-tag cache would do.
//
// # Epochs and replay
//
// Entries are stamped with the epoch of each source subsystem at the
// time the sources were materialized (read before materialization, so
// an update racing the computation causes at worst a spurious
// re-check, never a stale hit). A lookup whose stamped epochs lag the
// subsystems' current ones replays the missed updates from the
// subsystems' bounded journals (subsys.Versioned) through the survival
// test above; a journal that cannot reach back far enough — overflow,
// or a wholesale list replacement — fails the replay and the entry is
// dropped, conservatively.
//
// # Staleness contract
//
// A hit serves the original computation's results and Section 5
// tallies (plus the cost it saved). Results are exactly what a fresh
// evaluation over the current data would return — that is what the
// survival test proves, and what the equivalence tests and the
// middleware fuzz harness pin against an always-recompute oracle. The
// tallies describe the original computation: after surviving updates a
// fresh recompute might pay a different access pattern for the same
// answer, and the cache deliberately reports what was actually paid
// when the answer was computed (SavedCost is exactly that spend).
// Budgeted, degraded, and non-exact (bound-grade) evaluations are
// never cached: their reports depend on how the computation went, not
// only on what the data was.
package cache
