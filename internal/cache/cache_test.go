package cache

import (
	"sync"
	"testing"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/subsys"
)

func testKey(q string) Key {
	return Key{Query: q, K: 10, Algorithm: "A0", Law: "min/max", Prefetch: -1}
}

func testEntry(members []int, kth float64, epochs []uint64) *Entry {
	return NewEntry("payload", cost.Cost{Sorted: 100, Random: 50},
		[]AtomRef{{Attr: "A1", Target: "*"}, {Attr: "A2", Target: "*"}},
		agg.Min, members, kth, epochs)
}

func TestCacheLRUBound(t *testing.T) {
	c := New(2)
	if c.Cap() != 2 {
		t.Fatalf("cap = %d", c.Cap())
	}
	c.Put(testKey("a"), testEntry([]int{1}, 0.5, []uint64{0, 0}))
	c.Put(testKey("b"), testEntry([]int{2}, 0.5, []uint64{0, 0}))
	c.Put(testKey("c"), testEntry([]int{3}, 0.5, []uint64{0, 0}))
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(testKey("a"), nil); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get(testKey("c"), nil); !ok {
		t.Fatal("newest entry evicted")
	}
	// Touching "b" makes "c" the LRU victim of the next insert.
	if _, ok := c.Get(testKey("b"), nil); !ok {
		t.Fatal("entry b missing")
	}
	c.Put(testKey("d"), testEntry([]int{4}, 0.5, []uint64{0, 0}))
	if _, ok := c.Get(testKey("b"), nil); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(testKey("c"), nil); ok {
		t.Fatal("LRU victim survived")
	}
	st := c.Stats()
	if st.Stores != 4 || st.Evictions != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := New(8)
	c.Put(testKey("a"), testEntry([]int{1}, 0.5, []uint64{0, 0}))
	c.Put(testKey("b"), testEntry([]int{2}, 0.5, []uint64{0, 0}))
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("len = %d after Invalidate", c.Len())
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheFailedValidationDrops(t *testing.T) {
	c := New(8)
	c.Put(testKey("a"), testEntry([]int{1}, 0.5, []uint64{0, 0}))
	if _, ok := c.Get(testKey("a"), func(*Entry) bool { return false }); ok {
		t.Fatal("failed validation served")
	}
	if c.Len() != 0 {
		t.Fatal("invalidated entry kept")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// updatesOf builds the Revalidate callbacks for a single-subsystem
// scenario: every atom shares one epoch counter and journal.
func replay(e *Entry, epoch uint64, ups []subsys.Update) bool {
	return e.Revalidate(
		func(int) uint64 { return epoch },
		func(_ int, since uint64) ([]subsys.Update, bool) {
			out := []subsys.Update{}
			for _, u := range ups {
				if u.Seq > since {
					out = append(out, u)
				}
			}
			return out, true
		},
		func(i int, u subsys.Update) bool { return u.Target == "*" },
	)
}

func TestSurvivalRules(t *testing.T) {
	kth := 0.6
	cases := []struct {
		name    string
		u       subsys.Update
		survive bool
	}{
		{"member raise evicts", subsys.Update{Seq: 1, Target: "*", Object: 1, Old: 0.7, New: 0.9}, false},
		{"member lower evicts", subsys.Update{Seq: 1, Target: "*", Object: 2, Old: 0.8, New: 0.1}, false},
		{"non-member lower survives", subsys.Update{Seq: 1, Target: "*", Object: 9, Old: 0.5, New: 0.1}, true},
		{"non-member raise below kth survives", subsys.Update{Seq: 1, Target: "*", Object: 9, Old: 0.1, New: 0.59}, true},
		{"non-member raise above kth evicts", subsys.Update{Seq: 1, Target: "*", Object: 9, Old: 0.1, New: 0.7}, false},
		{"non-member raise to kth evicts (tie)", subsys.Update{Seq: 1, Target: "*", Object: 9, Old: 0.1, New: 0.6}, false},
		{"other target ignored", subsys.Update{Seq: 1, Target: "other", Object: 1, Old: 0.7, New: 1}, true},
	}
	for _, tc := range cases {
		e := testEntry([]int{1, 2, 3}, kth, []uint64{0, 0})
		got := replay(e, 1, []subsys.Update{tc.u})
		if got != tc.survive {
			t.Errorf("%s: survive = %v, want %v", tc.name, got, tc.survive)
		}
		if e.Dead() == got {
			t.Errorf("%s: dead = %v alongside survive = %v", tc.name, e.Dead(), got)
		}
	}
}

// TestSurvivalTracksKnownGrades pins the per-object refinement: under
// min, a raise to 0.9 on list 1 survives when an earlier replayed
// update revealed the object's grade on list 0 is tiny — the aggregate
// bound min(0.05, 0.9) stays below the k-th grade. Without tracking,
// the bound would be min(1, 0.9) = 0.9 and the entry would be lost.
func TestSurvivalTracksKnownGrades(t *testing.T) {
	e := testEntry([]int{1, 2, 3}, 0.6, []uint64{0, 0})
	journals := [][]subsys.Update{
		{{Seq: 1, Target: "*", Object: 9, Old: 0.5, New: 0.05}}, // list 0: reveals a tiny grade
		{{Seq: 1, Target: "*", Object: 9, Old: 0.1, New: 0.9}},  // list 1: would evict unrefined
	}
	ok := e.Revalidate(
		func(int) uint64 { return 1 },
		func(i int, since uint64) ([]subsys.Update, bool) { return journals[i], true },
		func(i int, u subsys.Update) bool { return u.Target == "*" },
	)
	if !ok {
		t.Fatal("raise evicted despite a known tiny grade on the other list")
	}
}

func TestRevalidateJournalOverflow(t *testing.T) {
	e := testEntry([]int{1}, 0.6, []uint64{0, 0})
	ok := e.Revalidate(
		func(int) uint64 { return 5 },
		func(int, uint64) ([]subsys.Update, bool) { return nil, false },
		func(int, subsys.Update) bool { return true },
	)
	if ok {
		t.Fatal("unreplayable history must evict")
	}
	if !e.Dead() {
		t.Fatal("entry not marked dead")
	}
}

func TestRevalidateAdvancesEpochs(t *testing.T) {
	e := testEntry([]int{1}, 0.6, []uint64{0, 0})
	calls := 0
	upsSince := func(_ int, since uint64) ([]subsys.Update, bool) {
		calls++
		if since != 3 && calls > 2 {
			// After the first successful replay the stamps must be 3: a
			// second revalidation at the same epoch replays nothing.
			return nil, false
		}
		return []subsys.Update{{Seq: since + 1, Target: "*", Object: 9, Old: 0.5, New: 0.1}}, true
	}
	if !e.Revalidate(func(int) uint64 { return 3 }, upsSince, func(int, subsys.Update) bool { return true }) {
		t.Fatal("first revalidation failed")
	}
	calls = 0
	if !e.Revalidate(func(int) uint64 { return 3 }, upsSince, func(int, subsys.Update) bool { return true }) {
		t.Fatal("second revalidation failed")
	}
	if calls != 0 {
		t.Fatalf("second revalidation replayed %d times; stamps did not advance", calls)
	}
}

// TestCacheConcurrentHitWhileInvalidating races lookups that serve an
// entry against Invalidate and failing validations; run under -race it
// pins the locking, and the counters must stay coherent (every lookup
// is a hit or a miss, never both, never neither).
func TestCacheConcurrentHitWhileInvalidating(t *testing.T) {
	c := New(16)
	key := testKey("hot")
	c.Put(key, testEntry([]int{1}, 0.5, []uint64{0, 0}))
	var wg sync.WaitGroup
	const lookups = 400
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				if e, ok := c.Get(key, func(e *Entry) bool { return i%7 != 0 }); ok {
					if e.Payload != "payload" {
						t.Error("wrong payload served")
						return
					}
				} else {
					c.Put(key, testEntry([]int{1}, 0.5, []uint64{0, 0}))
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < lookups/10; i++ {
				c.Invalidate()
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 4*lookups {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, 4*lookups)
	}
}
