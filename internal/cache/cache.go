package cache

import (
	"container/list"
	"sync"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/subsys"
)

// Key identifies a cacheable request: the normalized query (its
// canonical AST string after rewrite), the answer count, the algorithm
// and aggregation law that computed it, and the execution shape fields
// that change what a report carries (shards, prefetch, parallelism).
// Two requests with equal keys are served the same report.
type Key struct {
	// Query is the canonical string of the normalized (rewritten) AST.
	Query string
	// K is the clamped answer count.
	K int
	// Algorithm is the name of the algorithm that computed the entry.
	Algorithm string
	// Law names the aggregation semantics (conjunction/disjunction
	// rules) the query compiled under.
	Law string
	// Shards, Parallelism, and Prefetch pin the execution shape: reports
	// carry shape-dependent sections (per-shard tallies, pipeline
	// stats), so a hit must come from the same shape. Prefetch is -1
	// when the request did not ask for the pipelined executor, else the
	// requested depth.
	Shards      int
	Parallelism int
	Prefetch    int
	// Plan and Steal extend the execution shape for sharded requests:
	// the shard-boundary policy and work stealing both perturb the
	// per-shard tallies a cached report carries, so entries from
	// different planning modes must not collide. Both zero for
	// unsharded requests.
	Plan  int
	Steal bool
}

// AtomRef names one source list an entry depends on: the (attribute,
// target) pair of a planned atom.
type AtomRef struct {
	Attr   string
	Target string
}

// maxTracked bounds the per-entry map of updated-object grade
// knowledge. Beyond it, survival checks still run (with unknown grades
// bounded by 1) but stop refining — sound, just less sharp.
const maxTracked = 4096

// Entry is one cached computation. The exported fields are written at
// construction and read-only afterwards; revalidation state (epoch
// stamps, per-object grade knowledge) is internal and guarded.
type Entry struct {
	// Payload is the cached result, opaque to this package (the
	// middleware stores its Report here).
	Payload any
	// SavedCost is the Section 5 spend of the original computation: what
	// a hit avoids paying again.
	SavedCost cost.Cost
	// Atoms are the source lists the computation read, in plan order.
	Atoms []AtomRef

	agg      agg.Func
	kthGrade float64

	mu      sync.Mutex
	dead    bool
	epochs  []uint64          // per-atom source epoch the entry is valid at
	members map[int]struct{}  // objects in the cached top k
	known   map[int][]float64 // updated non-members: known grade per atom, -1 unknown
}

// NewEntry builds a cache entry: payload and saved cost to serve on a
// hit, and the survival-check inputs — the atoms read, the monotone
// aggregation function, the member objects of the cached top k, the
// k-th (smallest) result grade, and the per-atom source epochs read
// before the sources were materialized.
func NewEntry(payload any, saved cost.Cost, atoms []AtomRef, f agg.Func, members []int, kthGrade float64, epochs []uint64) *Entry {
	ms := make(map[int]struct{}, len(members))
	for _, o := range members {
		ms[o] = struct{}{}
	}
	return &Entry{
		Payload:   payload,
		SavedCost: saved,
		Atoms:     atoms,
		agg:       f,
		kthGrade:  kthGrade,
		epochs:    epochs,
		members:   ms,
		known:     make(map[int][]float64),
	}
}

// Revalidate brings the entry up to the subsystems' current epochs,
// replaying the missed updates through the threshold survival test (see
// the package comment). currentEpoch and updatesSince answer for the
// atom at the given index; atomsOf maps one update to the atom indices
// it touches (an update names a target; only atoms on that target are
// affected). It reports whether the entry survived; a false return has
// marked the entry dead and the caller must drop it.
func (e *Entry) Revalidate(
	currentEpoch func(i int) uint64,
	updatesSince func(i int, since uint64) ([]subsys.Update, bool),
	atomsOf func(i int, u subsys.Update) bool,
) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return false
	}
	for i := range e.Atoms {
		cur := currentEpoch(i)
		if cur == e.epochs[i] {
			continue
		}
		ups, ok := updatesSince(i, e.epochs[i])
		if !ok {
			e.dead = true
			return false
		}
		for _, u := range ups {
			if !atomsOf(i, u) {
				continue // different target on the same subsystem
			}
			if !e.survives(i, u) {
				e.dead = true
				return false
			}
		}
		e.epochs[i] = cur
	}
	return true
}

// Dead reports whether the entry failed a revalidation (it may still be
// briefly reachable from the LRU until the cache drops it).
func (e *Entry) Dead() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}

// EpochSum is the sum of the per-atom source epochs the entry is
// currently valid at: a monotone fingerprint of the data version the
// cached answer reflects.
func (e *Entry) EpochSum() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sum uint64
	for _, ep := range e.epochs {
		sum += ep
	}
	return sum
}

// survives applies one update to atom i under e.mu: false means the
// update could disturb the cached top k.
func (e *Entry) survives(i int, u subsys.Update) bool {
	if _, member := e.members[u.Object]; member {
		// A member's grade moved (no-op updates are never journaled):
		// its cached aggregate, and possibly the ordering, is stale.
		return false
	}
	v, tracked := e.known[u.Object]
	if !tracked && len(e.known) < maxTracked {
		v = make([]float64, len(e.Atoms))
		for j := range v {
			v[j] = -1
		}
		e.known[u.Object] = v
		tracked = true
	}
	if tracked {
		v[i] = u.New
	}
	if u.New <= u.Old {
		// Lowering a non-member cannot lift it past the k-th grade
		// (monotonicity), and no member grade moved.
		return true
	}
	// A raise: bound the object's new aggregate with everything known
	// about its grades — the raised grade on this list, exact grades
	// earlier updates revealed, 1 elsewhere — and require it strictly
	// below the k-th cached grade.
	bound := make([]float64, len(e.Atoms))
	for j := range bound {
		bound[j] = 1
		if tracked && v[j] >= 0 {
			bound[j] = v[j]
		}
	}
	if !tracked {
		bound[i] = u.New
	}
	return e.agg.Apply(bound) < e.kthGrade
}

// Stats are the cache's cumulative counters.
type Stats struct {
	// Hits is the number of lookups served from the cache (after
	// surviving revalidation).
	Hits uint64
	// Misses is the number of lookups that had to recompute: absent
	// keys plus entries dropped by revalidation.
	Misses uint64
	// Stores is the number of entries inserted.
	Stores uint64
	// Evictions counts entries dropped by the LRU capacity bound.
	Evictions uint64
	// Invalidations counts entries dropped because an update could have
	// disturbed them (failed revalidation) or by an explicit
	// invalidate-all.
	Invalidations uint64
}

// DefaultSize is the entry bound used when a cache is built with a
// non-positive capacity.
const DefaultSize = 256

// Cache is a bounded, concurrency-safe LRU over cached computations.
// All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of *lruItem, front = most recent
	items map[Key]*list.Element
	stats Stats
}

type lruItem struct {
	key   Key
	entry *Entry
}

// New builds a cache bounded to capacity entries (DefaultSize when
// non-positive).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultSize
	}
	return &Cache{cap: capacity, lru: list.New(), items: make(map[Key]*list.Element)}
}

// Cap returns the capacity bound.
func (c *Cache) Cap() int { return c.cap }

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get looks up key and, when present, runs validate on the entry
// outside the cache lock (concurrent lookups on other keys proceed).
// A validated entry counts a hit and refreshes its LRU position; a
// failed validation drops the entry and counts an invalidation plus a
// miss. validate may be nil for lookups that need no revalidation.
func (c *Cache) Get(key Key, validate func(*Entry) bool) (*Entry, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*lruItem).entry
	c.mu.Unlock()

	alive := validate == nil || validate(e)

	c.mu.Lock()
	defer c.mu.Unlock()
	if !alive {
		c.stats.Misses++
		if el2, still := c.items[key]; still && el2.Value.(*lruItem).entry == e {
			c.stats.Invalidations++
			c.lru.Remove(el2)
			delete(c.items, key)
		}
		return nil, false
	}
	c.stats.Hits++
	if el2, still := c.items[key]; still && el2.Value.(*lruItem).entry == e {
		c.lru.MoveToFront(el2)
	}
	return e, true
}

// Put inserts (or replaces) the entry for key, evicting from the LRU
// tail past the capacity bound.
func (c *Cache) Put(key Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Stores++
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).entry = e
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&lruItem{key: key, entry: e})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		it := tail.Value.(*lruItem)
		c.lru.Remove(tail)
		delete(c.items, it.key)
		c.stats.Evictions++
	}
}

// Invalidate drops every entry, counting them as invalidations.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Invalidations += uint64(c.lru.Len())
	c.lru.Init()
	c.items = make(map[Key]*list.Element)
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
