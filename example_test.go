package fuzzydb_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"fuzzydb"

	"fuzzydb/internal/middleware"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
	"fuzzydb/internal/wire"
)

// The paper's running example: combine a crisp relational predicate with
// a graded image-similarity query and take the best matches.
func Example() {
	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{
			fuzzydb.NewRelationalSubsystem("Artist",
				[]string{"Beatles", "Stones", "Beatles", "Dylan"}),
			fuzzydb.NewVectorSubsystem("AlbumColor",
				[][]float64{{0.9, 0.1, 0.0}, {0.8, 0.1, 0.1}, {0.1, 0.1, 0.8}, {0.5, 0.5, 0.5}},
				map[string][]float64{"red": {1, 0, 0}}),
		},
		fuzzydb.WithObjectNames([]string{"Abbey Road", "Sticky Fingers", "Let It Be", "Nashville Skyline"}),
	)
	if err != nil {
		panic(err)
	}
	rep, err := eng.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red"`, 2)
	if err != nil {
		panic(err)
	}
	for i, r := range rep.Results {
		fmt.Printf("%d. %s %.3f\n", i+1, eng.Name(r.Object), r.Grade)
	}
	fmt.Println("plan:", rep.Plan.Algorithm.Name())
	// Output:
	// 1. Abbey Road 0.876
	// 2. Let It Be 0.453
	// plan: A0'
}

// Running Fagin's Algorithm directly over two graded lists.
func ExampleTopK() {
	colors, _ := fuzzydb.NewList([]fuzzydb.Entry{
		{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.8}, {Object: 2, Grade: 0.3},
	})
	shapes, _ := fuzzydb.NewList([]fuzzydb.Entry{
		{Object: 2, Grade: 1.0}, {Object: 0, Grade: 0.7}, {Object: 1, Grade: 0.2},
	})
	results, cost, err := fuzzydb.TopK(
		[]fuzzydb.Source{fuzzydb.SourceFromList(colors), fuzzydb.SourceFromList(shapes)},
		fuzzydb.Min, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best: object %d, grade %.1f\n", results[0].Object, results[0].Grade)
	fmt.Printf("accesses: %d\n", cost.Sum())
	// Output:
	// best: object 0, grade 0.7
	// accesses: 6
}

// Weighted conjunction per Fagin–Wimmers: color twice as important as
// shape.
func ExampleNewWeighted() {
	w, err := fuzzydb.NewWeighted(fuzzydb.Min, []float64{2.0 / 3, 1.0 / 3})
	if err != nil {
		panic(err)
	}
	// f = (θ1−θ2)·x1 + 2·θ2·min(x1, x2) = (1/3)·x1 + (2/3)·min(x1, x2)
	fmt.Printf("%.3f\n", w.Apply([]float64{0.9, 0.3}))
	// Output:
	// 0.500
}

// Parsing queries into the AST.
func ExampleParseQuery() {
	q, err := fuzzydb.ParseQuery(`Color ~ "red" AND (Shape ~ "round" OR NOT Mono = "yes")`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output:
	// Color = "red" AND (Shape = "round" OR (NOT Mono = "yes"))
}

// Serving sorted lists over HTTP and querying them across the wire:
// the engine evaluates against remote sources with the exact Section 5
// access cost an in-process run reports (the transport moves bytes,
// never costs). See examples/wireserve for the standalone program and
// cmd/fuzzyserve for the deployable server.
func Example_wireServe() {
	db := scoredb.Generator{N: 1000, M: 2, Law: scoredb.Uniform{}, Seed: 42}.MustGenerate()
	server, err := wire.NewSourceServer(map[string]subsys.Source{
		"A1": subsys.FromList(db.List(0)),
		"A2": subsys.FromList(db.List(1)),
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(server)
	defer ts.Close()

	client, err := wire.Dial(ts.URL)
	if err != nil {
		panic(err)
	}
	defer client.Close()
	eng, err := middleware.New(client.Subsystems())
	if err != nil {
		panic(err)
	}
	rep, err := eng.QueryString(context.Background(), `A1 = "*" AND A2 = "*"`,
		middleware.TopN(3), middleware.WithPrefetch(0))
	if err != nil {
		panic(err)
	}
	for i, r := range rep.Results {
		fmt.Printf("%d. object %d grade %.4f\n", i+1, r.Object, r.Grade)
	}
	fmt.Printf("cost over the wire: %v\n", rep.Cost)
	// Output:
	// 1. object 212 grade 0.9482
	// 2. object 266 grade 0.9439
	// 3. object 415 grade 0.9250
	// cost over the wire: S=134 R=62 total=196
}
