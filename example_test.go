package fuzzydb_test

import (
	"fmt"

	"fuzzydb"
)

// The paper's running example: combine a crisp relational predicate with
// a graded image-similarity query and take the best matches.
func Example() {
	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{
			fuzzydb.NewRelationalSubsystem("Artist",
				[]string{"Beatles", "Stones", "Beatles", "Dylan"}),
			fuzzydb.NewVectorSubsystem("AlbumColor",
				[][]float64{{0.9, 0.1, 0.0}, {0.8, 0.1, 0.1}, {0.1, 0.1, 0.8}, {0.5, 0.5, 0.5}},
				map[string][]float64{"red": {1, 0, 0}}),
		},
		fuzzydb.WithObjectNames([]string{"Abbey Road", "Sticky Fingers", "Let It Be", "Nashville Skyline"}),
	)
	if err != nil {
		panic(err)
	}
	rep, err := eng.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red"`, 2)
	if err != nil {
		panic(err)
	}
	for i, r := range rep.Results {
		fmt.Printf("%d. %s %.3f\n", i+1, eng.Name(r.Object), r.Grade)
	}
	fmt.Println("plan:", rep.Plan.Algorithm.Name())
	// Output:
	// 1. Abbey Road 0.876
	// 2. Let It Be 0.453
	// plan: A0'
}

// Running Fagin's Algorithm directly over two graded lists.
func ExampleTopK() {
	colors, _ := fuzzydb.NewList([]fuzzydb.Entry{
		{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.8}, {Object: 2, Grade: 0.3},
	})
	shapes, _ := fuzzydb.NewList([]fuzzydb.Entry{
		{Object: 2, Grade: 1.0}, {Object: 0, Grade: 0.7}, {Object: 1, Grade: 0.2},
	})
	results, cost, err := fuzzydb.TopK(
		[]fuzzydb.Source{fuzzydb.SourceFromList(colors), fuzzydb.SourceFromList(shapes)},
		fuzzydb.Min, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best: object %d, grade %.1f\n", results[0].Object, results[0].Grade)
	fmt.Printf("accesses: %d\n", cost.Sum())
	// Output:
	// best: object 0, grade 0.7
	// accesses: 6
}

// Weighted conjunction per Fagin–Wimmers: color twice as important as
// shape.
func ExampleNewWeighted() {
	w, err := fuzzydb.NewWeighted(fuzzydb.Min, []float64{2.0 / 3, 1.0 / 3})
	if err != nil {
		panic(err)
	}
	// f = (θ1−θ2)·x1 + 2·θ2·min(x1, x2) = (1/3)·x1 + (2/3)·min(x1, x2)
	fmt.Printf("%.3f\n", w.Apply([]float64{0.9, 0.3}))
	// Output:
	// 0.500
}

// Parsing queries into the AST.
func ExampleParseQuery() {
	q, err := fuzzydb.ParseQuery(`Color ~ "red" AND (Shape ~ "round" OR NOT Mono = "yes")`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output:
	// Color = "red" AND (Shape = "round" OR (NOT Mono = "yes"))
}
