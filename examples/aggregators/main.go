// The aggregation-function zoo of Section 3: how the choice of
// conjunction rule changes grades and rankings, which properties each
// rule satisfies, and why min is special (Theorem 3.1). Also shows the
// non-strict median evaluated by the subset-decomposition algorithm of
// Remark 6.1.
//
//	go run ./examples/aggregators
package main

import (
	"context"
	"fmt"
	"log"

	"fuzzydb"
)

func main() {
	ctx := context.Background()

	// A small graded database: three atomic queries over six objects.
	db := fuzzydb.DatabaseGenerator{N: 6, M: 3, Law: fuzzydb.UniformLaw{}, Seed: 3}.MustGenerate()

	fmt.Println("grades per object (three atomic queries):")
	for obj := 0; obj < db.N(); obj++ {
		gs, err := db.Grades(obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  object %d: %.2f %.2f %.2f\n", obj, gs[0], gs[1], gs[2])
	}

	rules := []fuzzydb.AggFunc{
		fuzzydb.Min,
		fuzzydb.AlgebraicProduct,
		fuzzydb.EinsteinProduct,
		fuzzydb.HamacherProduct,
		fuzzydb.BoundedDifference,
		fuzzydb.ArithmeticMean,
		fuzzydb.GeometricMean,
		fuzzydb.Median,
		fuzzydb.Max,
	}

	fmt.Println("\ntop answer of the 3-way conjunction under each rule:")
	fmt.Printf("  %-20s %-9s %-7s %-8s %s\n", "rule", "monotone", "strict", "object", "grade")
	for _, rule := range rules {
		res, _, err := fuzzydb.Evaluate(ctx, fuzzydb.FaginsAlgorithm, fuzzydb.DatabaseSources(db), rule, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %-9v %-7v %-8d %.4f\n",
			rule.Name(), rule.Monotone(), rule.Strict(), res[0].Object, res[0].Grade)
	}
	fmt.Println("\nevery monotone rule is evaluated correctly by the same algorithm A0;")
	fmt.Println("strict rules obey the Theta(N^((m-1)/m) k^(1/m)) bound, non-strict ones can beat it")

	// The median on a bigger database: subset decomposition vs naive.
	big := fuzzydb.DatabaseGenerator{N: 20000, M: 3, Law: fuzzydb.UniformLaw{}, Seed: 4}.MustGenerate()
	medRes, medCost, err := fuzzydb.Evaluate(ctx, fuzzydb.MedianAlgorithm, fuzzydb.DatabaseSources(big), fuzzydb.Median, 5)
	if err != nil {
		log.Fatal(err)
	}
	_, naiveCost, err := fuzzydb.Evaluate(ctx, fuzzydb.NaiveAlgorithm, fuzzydb.DatabaseSources(big), fuzzydb.Median, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmedian query over 20000 objects, top grade %.4f:\n", medRes[0].Grade)
	fmt.Printf("  subset-decomposition cost %v vs naive %v (Remark 6.1: O(sqrt(Nk)))\n", medCost, naiveCost)
}
