// Cost scaling: Theorem 5.3 live. Sweeps the database size N and prints
// the measured middleware cost of Fagin's Algorithm next to the naive
// baseline and the √(Nk) prediction — the headline result of the paper
// in one table.
//
//	go run ./examples/costscaling
package main

import (
	"context"
	"fmt"
	"math"

	"fuzzydb"
)

func main() {
	ctx := context.Background()
	const (
		m      = 2
		k      = 10
		trials = 5
	)
	fmt.Println("top-k conjunction of two independent fuzzy queries (k=10)")
	fmt.Printf("%-9s %12s %12s %12s %14s\n", "N", "A0 cost", "naive cost", "sqrt(N*k)", "A0/sqrt(N*k)")
	for _, n := range []int{1000, 4000, 16000, 64000, 256000} {
		var a0Sum, naiveSum float64
		for s := 0; s < trials; s++ {
			db := fuzzydb.DatabaseGenerator{N: n, M: m, Law: fuzzydb.UniformLaw{}, Seed: uint64(s + 1)}.MustGenerate()
			_, cA0, err := fuzzydb.Evaluate(ctx, fuzzydb.FaginsAlgorithm, fuzzydb.DatabaseSources(db), fuzzydb.Min, k)
			if err != nil {
				panic(err)
			}
			_, cNaive, err := fuzzydb.Evaluate(ctx, fuzzydb.NaiveAlgorithm, fuzzydb.DatabaseSources(db), fuzzydb.Min, k)
			if err != nil {
				panic(err)
			}
			a0Sum += float64(cA0.Sum())
			naiveSum += float64(cNaive.Sum())
		}
		a0 := a0Sum / trials
		naive := naiveSum / trials
		pred := math.Sqrt(float64(n * k))
		fmt.Printf("%-9d %12.0f %12.0f %12.0f %14.2f\n", n, a0, naive, pred, a0/pred)
	}
	fmt.Println("\nthe A0 column grows like sqrt(N) while naive grows like N;")
	fmt.Println("the last column is the constant factor of Theorem 6.5's Theta bound")
}
