// Wireserve: deploy sorted lists behind the HTTP wire protocol, then
// run Fagin's Algorithm against them from another process — here the
// same process, over a real loopback socket — with the exact Section 5
// access cost an in-process evaluation would report. The wire moves
// bytes; the middleware still meters every sorted and random access on
// the client side, so transparency is bit-exact.
//
//	go run ./examples/wireserve
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"fuzzydb/internal/middleware"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
	"fuzzydb/internal/wire"
)

func main() {
	// Two graded lists over a thousand objects, as a remote backend
	// would hold them: say a text index (A1) and an image index (A2).
	db := scoredb.Generator{N: 1000, M: 2, Law: scoredb.Uniform{}, Seed: 42}.MustGenerate()

	// Server half: expose the lists as paged source RPCs.
	server, err := wire.NewSourceServer(map[string]subsys.Source{
		"A1": subsys.FromList(db.List(0)),
		"A2": subsys.FromList(db.List(1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, server); err != nil {
			log.Print(err)
		}
	}()

	// Client half: dial, and hand the remote lists to a local engine as
	// ordinary subsystems. Every sorted access becomes a paged fetch,
	// every random access a grade probe — retried, metered, and
	// prefetched exactly like local ones.
	client, err := wire.Dial("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	eng, err := middleware.New(client.Subsystems())
	if err != nil {
		log.Fatal(err)
	}

	rep, err := eng.QueryString(context.Background(), `A1 = "*" AND A2 = "*"`,
		middleware.TopN(3), middleware.WithPrefetch(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d over the wire (plan %s):\n", len(rep.Results), rep.Plan.Algorithm.Name())
	for i, r := range rep.Results {
		fmt.Printf("%d. object %d grade %.4f\n", i+1, r.Object, r.Grade)
	}
	fmt.Printf("middleware cost: %v — identical to an in-process run\n", rep.Cost)
}
