// The paper's running example in full: a compact-disk store whose Artist
// attribute lives in a relational database and whose AlbumColor lives in
// a QBIC-like image subsystem. Demonstrates the engine (parse → plan →
// evaluate → cost report), Boolean combinations, filtering, and
// pagination ("the next k best").
//
//	go run ./examples/cdstore
package main

import (
	"fmt"
	"log"

	"fuzzydb"
)

func main() {
	names := []string{
		"Abbey Road", "Let It Be", "Sticky Fingers", "Beggars Banquet",
		"Nashville Skyline", "Revolver", "Blood on the Tracks", "Exile on Main St",
	}
	artists := []string{
		"Beatles", "Beatles", "Stones", "Stones", "Dylan", "Beatles", "Dylan", "Stones",
	}
	// Synthetic cover colors as RGB histograms.
	covers := [][]float64{
		{0.80, 0.10, 0.10}, // Abbey Road: red-leaning (in this fiction)
		{0.10, 0.10, 0.10}, // Let It Be: dark
		{0.90, 0.05, 0.05}, // Sticky Fingers: red
		{0.60, 0.50, 0.30}, // Beggars Banquet: beige
		{0.10, 0.20, 0.80}, // Nashville Skyline: blue
		{0.70, 0.20, 0.10}, // Revolver: warm
		{0.30, 0.10, 0.60}, // Blood on the Tracks: violet
		{0.85, 0.15, 0.10}, // Exile: red-ish
	}

	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{
			fuzzydb.NewRelationalSubsystem("Artist", artists),
			fuzzydb.NewVectorSubsystem("AlbumColor", covers, map[string][]float64{
				"red":  {1, 0, 0},
				"blue": {0, 0, 1},
			}),
		},
		fuzzydb.WithObjectNames(names),
	)
	if err != nil {
		log.Fatal(err)
	}

	show := func(q string, k int) {
		rep, err := eng.TopKString(q, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\nplan:  %s\n       %s\n", q, rep.Plan.Algorithm.Name(), rep.Plan.Reason)
		for i, r := range rep.Results {
			fmt.Printf("  %d. %-20s %.4f\n", i+1, eng.Name(r.Object), r.Grade)
		}
		fmt.Printf("cost:  %v\n\n", rep.Cost)
	}

	// The paper's motivating queries.
	show(`Artist = "Beatles" AND AlbumColor ~ "red"`, 3)
	show(`Artist = "Beatles" OR AlbumColor ~ "red"`, 3)
	show(`Artist = "Dylan" AND NOT AlbumColor ~ "blue"`, 2)

	// Filter conditions (Chaudhuri–Gravano): everything at least 0.6 red.
	q, err := fuzzydb.ParseQuery(`AlbumColor ~ "red"`)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Filter(q, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("albums with redness >= 0.6:")
	for _, r := range rep.Results {
		fmt.Printf("  %-20s %.4f\n", eng.Name(r.Object), r.Grade)
	}

	// Pagination: the top 2, then the next 2, continuing where we left
	// off (the feature noted after Theorem 4.2).
	q2, err := fuzzydb.ParseQuery(`Artist = "Stones" AND AlbumColor ~ "red"`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := eng.Paginate(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStones albums by redness, two pages of two:")
	for page := 1; page <= 2; page++ {
		rs, err := p.NextPage(2)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rs {
			fmt.Printf("  page %d: %-20s %.4f\n", page, eng.Name(r.Object), r.Grade)
		}
	}
}
