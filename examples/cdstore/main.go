// The paper's running example in full: a compact-disk store whose Artist
// attribute lives in a relational database and whose AlbumColor lives in
// a QBIC-like image subsystem. Demonstrates the request API (parse →
// plan → evaluate → cost report under a context), Boolean combinations,
// filtering, and streaming "the next k best".
//
//	go run ./examples/cdstore
package main

import (
	"context"
	"fmt"
	"log"

	"fuzzydb"
)

func main() {
	names := []string{
		"Abbey Road", "Let It Be", "Sticky Fingers", "Beggars Banquet",
		"Nashville Skyline", "Revolver", "Blood on the Tracks", "Exile on Main St",
	}
	artists := []string{
		"Beatles", "Beatles", "Stones", "Stones", "Dylan", "Beatles", "Dylan", "Stones",
	}
	// Synthetic cover colors as RGB histograms.
	covers := [][]float64{
		{0.80, 0.10, 0.10}, // Abbey Road: red-leaning (in this fiction)
		{0.10, 0.10, 0.10}, // Let It Be: dark
		{0.90, 0.05, 0.05}, // Sticky Fingers: red
		{0.60, 0.50, 0.30}, // Beggars Banquet: beige
		{0.10, 0.20, 0.80}, // Nashville Skyline: blue
		{0.70, 0.20, 0.10}, // Revolver: warm
		{0.30, 0.10, 0.60}, // Blood on the Tracks: violet
		{0.85, 0.15, 0.10}, // Exile: red-ish
	}

	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{
			fuzzydb.NewRelationalSubsystem("Artist", artists),
			fuzzydb.NewVectorSubsystem("AlbumColor", covers, map[string][]float64{
				"red":  {1, 0, 0},
				"blue": {0, 0, 1},
			}),
		},
		fuzzydb.WithObjectNames(names),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	show := func(q string, k int) {
		rep, err := eng.QueryString(ctx, q, fuzzydb.TopN(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\nplan:  %s\n       %s\n", q, rep.Plan.Algorithm.Name(), rep.Plan.Reason)
		for i, r := range rep.Results {
			fmt.Printf("  %d. %-20s %.4f\n", i+1, eng.Name(r.Object), r.Grade)
		}
		fmt.Printf("cost:  %v\n\n", rep.Cost)
	}

	// The paper's motivating queries.
	show(`Artist = "Beatles" AND AlbumColor ~ "red"`, 3)
	show(`Artist = "Beatles" OR AlbumColor ~ "red"`, 3)
	show(`Artist = "Dylan" AND NOT AlbumColor ~ "blue"`, 2)

	// Filter conditions (Chaudhuri–Gravano): everything at least 0.6 red.
	q, err := fuzzydb.ParseQuery(`AlbumColor ~ "red"`)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Filter(ctx, q, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("albums with redness >= 0.6:")
	for _, r := range rep.Results {
		fmt.Printf("  %-20s %.4f\n", eng.Name(r.Object), r.Grade)
	}

	// Streaming: answers arrive one at a time in descending grade order
	// (the "next k best" continuation noted after Theorem 4.2); the
	// consumer stops whenever it has seen enough. TopN(2) sets the page
	// granularity of the underlying incremental widening.
	q2, err := fuzzydb.ParseQuery(`Artist = "Stones" AND AlbumColor ~ "red"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStones albums by redness, streamed, best four:")
	seen := 0
	for r, err := range eng.Results(ctx, q2, fuzzydb.TopN(2)) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d. %-20s %.4f\n", seen+1, eng.Name(r.Object), r.Grade)
		if seen++; seen == 4 {
			break
		}
	}
}
