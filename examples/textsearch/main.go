// Text retrieval as a graded subsystem: the other nontraditional data
// server the paper's introduction names. Combines a text score with a
// crisp predicate and an image score across three subsystems, including
// the weighted query syntax (Fagin–Wimmers importance weights).
//
//	go run ./examples/textsearch
package main

import (
	"context"
	"fmt"
	"log"

	"fuzzydb"
)

func main() {
	names := []string{
		"Abbey Road", "Let It Be", "Sticky Fingers",
		"Nashville Skyline", "Revolver", "Blonde on Blonde",
	}
	artists := []string{"Beatles", "Beatles", "Stones", "Dylan", "Beatles", "Dylan"}
	reviews := []string{
		"a flawless late masterpiece, warm harmonies and a famous crossing",
		"raw rooftop sessions, stripped back and direct",
		"swaggering riffs, a masterpiece of grit",
		"gentle country detour with warm pedal steel",
		"studio experiments, tape loops, a psychedelic masterpiece",
		"sprawling double album, surreal and warm",
	}
	covers := [][]float64{
		{0.7, 0.2, 0.1}, {0.1, 0.1, 0.1}, {0.9, 0.05, 0.05},
		{0.2, 0.3, 0.7}, {0.6, 0.3, 0.1}, {0.4, 0.3, 0.3},
	}

	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{
			fuzzydb.NewRelationalSubsystem("Artist", artists),
			fuzzydb.NewTextSubsystem("Review", reviews),
			fuzzydb.NewVectorSubsystem("Cover", covers, map[string][]float64{"red": {1, 0, 0}}),
		},
		fuzzydb.WithObjectNames(names),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	show := func(q string, k int) {
		rep, err := eng.QueryString(ctx, q, fuzzydb.TopN(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\nplan:  %s\n", q, rep.Plan.Algorithm.Name())
		for i, r := range rep.Results {
			fmt.Printf("  %d. %-18s %.4f\n", i+1, eng.Name(r.Object), r.Grade)
		}
		fmt.Printf("cost:  %v", rep.Cost)
		for i, c := range rep.PerList {
			fmt.Printf("  [%s: %v]", rep.Plan.Atoms[i].Attr, c)
		}
		fmt.Println()
		fmt.Println()
	}

	// Text relevance alone: a graded list like any other subsystem's.
	show(`Review ~ "warm masterpiece"`, 3)

	// Crisp ∧ fuzzy text: the Beatles' warmest masterpiece.
	show(`Artist = "Beatles" AND Review ~ "warm masterpiece"`, 2)

	// Three subsystems with weights: the review matters twice as much as
	// the cover color.
	show(`Artist = "Beatles" AND Review ~ "masterpiece" ^ 2 AND Cover ~ "red" ^ 1`, 3)
}
