// Multimedia search: (Color = "red") AND (Shape = "round") over two
// fuzzy subsystems — the Section 4 scenario where more than one conjunct
// is nontraditional. Demonstrates weighted conjunctions (Fagin–Wimmers:
// "color matters twice as much as shape"), the internal-vs-external
// conjunction mismatch of Section 8, and a cost comparison across the
// algorithm family on the same query.
//
//	go run ./examples/multimedia
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"fuzzydb"
)

func main() {
	const n = 2000
	rng := rand.New(rand.NewPCG(19, 96))

	// Synthetic image features: a 3-dim color histogram and a 2-dim
	// shape descriptor (roundness, symmetry) per image.
	colors := make([][]float64, n)
	shapes := make([][]float64, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		colors[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		shapes[i] = []float64{rng.Float64(), rng.Float64()}
		names[i] = fmt.Sprintf("img-%04d", i)
	}

	colorSub := fuzzydb.NewVectorSubsystem("Color", colors, map[string][]float64{
		"red": {1, 0, 0},
	})
	shapeSub := fuzzydb.NewVectorSubsystem("Shape", shapes, map[string][]float64{
		"round": {1, 0.5},
	})
	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{colorSub, shapeSub},
		fuzzydb.WithObjectNames(names),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// 1. The plain conjunction through the engine.
	rep, err := eng.QueryString(ctx, `Color ~ "red" AND Shape ~ "round"`, fuzzydb.TopN(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("red AND round, top 5 (plan %s):\n", rep.Plan.Algorithm.Name())
	for i, r := range rep.Results {
		fmt.Printf("  %d. %s %.4f\n", i+1, eng.Name(r.Object), r.Grade)
	}
	fmt.Printf("cost: %v of naive %d\n\n", rep.Cost, 2*n)

	// 2a. Weighted conjunction in the query language itself.
	wrep, err := eng.QueryString(ctx, `Color ~ "red" ^ 2 AND Shape ~ "round" ^ 1`, fuzzydb.TopN(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted syntax (color ^ 2), plan %s:\n", wrep.Plan.Algorithm.Name())
	for i, r := range wrep.Results {
		fmt.Printf("  %d. %s %.4f\n", i+1, eng.Name(r.Object), r.Grade)
	}
	fmt.Println()

	// 2b. The same weights assembled programmatically [FW97].
	redSrc, err := colorSub.Query("red")
	if err != nil {
		log.Fatal(err)
	}
	roundSrc, err := shapeSub.Query("round")
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := fuzzydb.NewWeighted(fuzzydb.Min, []float64{2.0 / 3, 1.0 / 3})
	if err != nil {
		log.Fatal(err)
	}
	wres, wcost, err := fuzzydb.Evaluate(ctx, fuzzydb.FaginsAlgorithm, []fuzzydb.Source{redSrc, roundSrc}, weighted, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same query, color weighted 2x over shape:")
	for i, r := range wres {
		fmt.Printf("  %d. %s %.4f\n", i+1, names[r.Object], r.Grade)
	}
	fmt.Printf("cost: %v\n\n", wcost)

	// 3. Algorithm family on the same query: identical answers,
	// different access patterns.
	fmt.Println("algorithm family on red AND round (k=5):")
	algs := []fuzzydb.Algorithm{
		fuzzydb.FaginsAlgorithm, fuzzydb.FaginsAlgorithmPrime,
		fuzzydb.ThresholdAlgorithm, fuzzydb.UllmanAlgorithm,
		fuzzydb.NaiveAlgorithm,
	}
	for _, alg := range algs {
		srcs := []fuzzydb.Source{redSrc, roundSrc}
		res, c, err := fuzzydb.Evaluate(ctx, alg, srcs, fuzzydb.Min, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s top grade %.4f  cost %v\n", alg.Name(), res[0].Grade, c)
	}

	// 4. Section 8: internal vs external conjunction. Two color targets
	// on the SAME subsystem: pushed down, the subsystem combines them
	// with its own semantics (product), not the middleware's min.
	colorSub.AddTarget("orange", []float64{1, 0.5, 0})
	atoms := []fuzzydb.Atomic{
		{Attr: "Color", Target: "red"},
		{Attr: "Color", Target: "orange"},
	}
	ext, err := eng.Query(ctx, fuzzydb.And{Children: []fuzzydb.Query{atoms[0], atoms[1]}}, fuzzydb.TopN(3))
	if err != nil {
		log.Fatal(err)
	}
	int_, err := eng.TopKInternal(ctx, atoms, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nred AND orange: external (middleware min) vs internal (subsystem product):")
	for i := range ext.Results {
		fmt.Printf("  ext %s %.4f   int %s %.4f\n",
			names[ext.Results[i].Object], ext.Results[i].Grade,
			names[int_.Results[i].Object], int_.Results[i].Grade)
	}
	fmt.Println("the grades differ: the subsystem's own conjunction semantics is not min (Section 8)")
}
