// Quickstart: build two graded sources by hand, run Fagin's Algorithm,
// and inspect the answers and the middleware cost.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"fuzzydb"
)

func main() {
	// Two atomic queries over five objects (0..4): "how red is it?" and
	// "how round is it?" — the Section 4 example. A graded list is the
	// result a subsystem such as QBIC would return.
	red, err := fuzzydb.NewList([]fuzzydb.Entry{
		{Object: 0, Grade: 0.95},
		{Object: 1, Grade: 0.80},
		{Object: 2, Grade: 0.60},
		{Object: 3, Grade: 0.30},
		{Object: 4, Grade: 0.10},
	})
	if err != nil {
		log.Fatal(err)
	}
	round, err := fuzzydb.NewList([]fuzzydb.Entry{
		{Object: 3, Grade: 0.90},
		{Object: 2, Grade: 0.85},
		{Object: 0, Grade: 0.50},
		{Object: 4, Grade: 0.40},
		{Object: 1, Grade: 0.20},
	})
	if err != nil {
		log.Fatal(err)
	}

	sources := []fuzzydb.Source{
		fuzzydb.SourceFromList(red),
		fuzzydb.SourceFromList(round),
	}

	// Top 2 answers of (Color="red") AND (Shape="round") under the
	// standard fuzzy conjunction (min). Every evaluation is a request:
	// it takes a context, so callers can cancel or bound it.
	ctx := context.Background()
	results, cost, err := fuzzydb.Evaluate(ctx, fuzzydb.FaginsAlgorithm, sources, fuzzydb.Min, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top 2 answers of red AND round (min rule):")
	for i, r := range results {
		fmt.Printf("  %d. object %d with grade %.2f\n", i+1, r.Object, r.Grade)
	}
	fmt.Printf("middleware cost: %v (sorted + random accesses)\n\n", cost)

	// The same query under a different conjunction rule: the algebraic
	// product. A₀ is correct for any monotone aggregation (Theorem 4.2).
	results, _, err = fuzzydb.Evaluate(ctx, fuzzydb.FaginsAlgorithm, sources, fuzzydb.AlgebraicProduct, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same query under the product t-norm:")
	for i, r := range results {
		fmt.Printf("  %d. object %d with grade %.2f\n", i+1, r.Object, r.Grade)
	}
}
